"""Tests for the tensor hypergraph models and the partitioning strategies."""

import numpy as np
import pytest

from repro.core import SparseTensor
from repro.data import power_law_sparse_tensor
from repro.partition import (
    TensorPartition,
    build_coarse_hypergraph,
    build_fine_hypergraph,
    connectivity_cutsize,
    make_partition,
)


@pytest.fixture
def skewed_tensor():
    return power_law_sparse_tensor((80, 60, 120), 4000, exponents=0.9, seed=3)


class TestFineModel:
    def test_vertex_per_nonzero(self, skewed_tensor):
        hg, index = build_fine_hypergraph(skewed_tensor)
        assert hg.num_vertices == skewed_tensor.nnz
        assert np.all(hg.vertex_weights == 1)

    def test_one_net_per_nonempty_index(self, skewed_tensor):
        hg, index = build_fine_hypergraph(skewed_tensor)
        expected = sum(
            len(skewed_tensor.nonempty_rows(m)) for m in range(skewed_tensor.order)
        )
        assert hg.num_nets == expected

    def test_pins_count(self, skewed_tensor):
        hg, _ = build_fine_hypergraph(skewed_tensor)
        assert hg.num_pins == skewed_tensor.nnz * skewed_tensor.order

    def test_net_pins_share_index(self, skewed_tensor):
        hg, index = build_fine_hypergraph(skewed_tensor)
        for net_id in (0, hg.num_nets // 2, hg.num_nets - 1):
            mode = int(index.net_mode[net_id])
            row = int(index.net_index[net_id])
            pins = hg.net(net_id)
            assert np.all(skewed_tensor.indices[pins, mode] == row)

    def test_rank_costs(self, skewed_tensor):
        hg, index = build_fine_hypergraph(skewed_tensor, ranks=(2, 3, 4))
        for net_id in (0, hg.num_nets - 1):
            mode = int(index.net_mode[net_id])
            assert hg.net_costs[net_id] == (2, 3, 4)[mode]

    def test_empty_tensor(self):
        hg, index = build_fine_hypergraph(SparseTensor.empty((4, 4)))
        assert hg.num_vertices == 0 and hg.num_nets == 0


class TestCoarseModel:
    def test_vertex_per_index(self, skewed_tensor):
        for mode in range(3):
            hg = build_coarse_hypergraph(skewed_tensor, mode)
            assert hg.num_vertices == skewed_tensor.shape[mode]

    def test_vertex_weights_are_slice_sizes(self, skewed_tensor):
        hg = build_coarse_hypergraph(skewed_tensor, 0)
        assert np.array_equal(hg.vertex_weights, skewed_tensor.mode_counts(0))

    def test_net_pins_are_cooccurring_slices(self, skewed_tensor):
        hg = build_coarse_hypergraph(skewed_tensor, 0)
        # every net's pins must be distinct mode-0 indices
        for net_id in range(0, hg.num_nets, max(hg.num_nets // 10, 1)):
            pins = hg.net(net_id)
            assert len(set(pins.tolist())) == len(pins)
            assert len(pins) >= 2


class TestStrategies:
    @pytest.mark.parametrize("strategy", ["fine-hp", "fine-rd", "coarse-hp", "coarse-bl"])
    def test_partition_structure(self, skewed_tensor, strategy):
        part = make_partition(skewed_tensor, 4, strategy, seed=0)
        assert isinstance(part, TensorPartition)
        assert part.num_parts == 4
        assert part.strategy == strategy
        assert len(part.row_owner) == 3
        for mode, owner in enumerate(part.row_owner):
            assert owner.shape == (skewed_tensor.shape[mode],)
            assert owner.min() >= 0 and owner.max() < 4
        if part.kind == "fine":
            assert part.nonzero_owner.shape == (skewed_tensor.nnz,)

    def test_unknown_strategy(self, skewed_tensor):
        with pytest.raises(ValueError):
            make_partition(skewed_tensor, 4, "medium-grain")

    def test_fine_local_nonzeros_partition_exactly(self, skewed_tensor):
        part = make_partition(skewed_tensor, 4, "fine-rd", seed=1)
        union = np.concatenate(
            [part.local_nonzero_positions(skewed_tensor, r) for r in range(4)]
        )
        assert sorted(union.tolist()) == list(range(skewed_tensor.nnz))

    def test_coarse_local_nonzeros_cover_with_replication(self, skewed_tensor):
        part = make_partition(skewed_tensor, 4, "coarse-bl")
        union = np.concatenate(
            [part.local_nonzero_positions(skewed_tensor, r) for r in range(4)]
        )
        # Every nonzero is stored somewhere, possibly multiple times.
        assert set(union.tolist()) == set(range(skewed_tensor.nnz))
        assert union.shape[0] >= skewed_tensor.nnz

    def test_coarse_owner_has_whole_slices(self, skewed_tensor):
        part = make_partition(skewed_tensor, 4, "coarse-hp", seed=0)
        mode = 0
        rank = 2
        owned = part.owned_rows(mode, rank)
        local = part.local_nonzero_positions(skewed_tensor, rank)
        local_idx = skewed_tensor.indices[local, mode]
        # Every nonzero of an owned slice is present locally.
        in_owned = np.isin(skewed_tensor.indices[:, mode], owned)
        assert np.isin(np.flatnonzero(in_owned), local).all()

    def test_ttmc_counts_sum(self, skewed_tensor):
        fine = make_partition(skewed_tensor, 4, "fine-rd", seed=0)
        counts = fine.ttmc_nonzero_counts(skewed_tensor, 0)
        assert counts.sum() == skewed_tensor.nnz
        coarse = make_partition(skewed_tensor, 4, "coarse-bl")
        ccounts = coarse.ttmc_nonzero_counts(skewed_tensor, 1)
        assert ccounts.sum() == skewed_tensor.nnz  # each slice owned exactly once

    def test_fine_ttmc_balance_better_than_coarse_block(self, skewed_tensor):
        fine = make_partition(skewed_tensor, 8, "fine-hp", seed=0)
        coarse = make_partition(skewed_tensor, 8, "coarse-bl")
        f = fine.ttmc_nonzero_counts(skewed_tensor, 2)
        c = coarse.ttmc_nonzero_counts(skewed_tensor, 2)
        assert f.max() / max(f.mean(), 1) <= c.max() / max(c.mean(), 1) + 1e-9

    def test_fine_hp_cut_below_fine_rd(self, skewed_tensor):
        hg, _ = build_fine_hypergraph(skewed_tensor)
        hp = make_partition(skewed_tensor, 8, "fine-hp", seed=0)
        rd = make_partition(skewed_tensor, 8, "fine-rd", seed=0)
        cut_hp = connectivity_cutsize(hg, hp.nonzero_owner, 8)
        cut_rd = connectivity_cutsize(hg, rd.nonzero_owner, 8)
        assert cut_hp < cut_rd / 2

    def test_trsvd_rows_fine_at_least_nonempty_fraction(self, skewed_tensor):
        part = make_partition(skewed_tensor, 4, "fine-hp", seed=0)
        rows = part.trsvd_row_counts(skewed_tensor, 2)
        nonempty = len(skewed_tensor.nonempty_rows(2))
        # Partial rows can be redundant, so the total is at least the number
        # of non-empty rows (coarse would be exactly that).
        assert rows.sum() >= nonempty

    def test_trsvd_rows_coarse_sum_equals_nonempty(self, skewed_tensor):
        part = make_partition(skewed_tensor, 4, "coarse-hp", seed=0)
        rows = part.trsvd_row_counts(skewed_tensor, 2)
        assert rows.sum() == len(skewed_tensor.nonempty_rows(2))

    def test_fine_partition_kind_validation(self, skewed_tensor):
        with pytest.raises(ValueError):
            TensorPartition(kind="fine", strategy="x", num_parts=2,
                            row_owner=[np.zeros(s, dtype=np.int64)
                                       for s in skewed_tensor.shape])

    def test_partition_deterministic(self, skewed_tensor):
        a = make_partition(skewed_tensor, 4, "fine-hp", seed=5)
        b = make_partition(skewed_tensor, 4, "fine-hp", seed=5)
        assert np.array_equal(a.nonzero_owner, b.nonzero_owner)
