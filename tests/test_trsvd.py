"""Unit tests for the matrix-free truncated SVD solvers."""

import numpy as np
import pytest

from repro.core import (
    CountingOperator,
    DenseOperator,
    LinearOperator,
    lanczos_svd,
    randomized_svd,
    truncated_svd,
)


def spectrum_matrix(rng, m=120, n=40, decay=0.5):
    """Matrix with a controlled, well-separated spectrum."""
    u, _ = np.linalg.qr(rng.standard_normal((m, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = decay ** np.arange(n) * 10.0
    return (u * s) @ v.T


class TestDenseOperator:
    def test_matvec_rmatvec(self, rng):
        a = rng.standard_normal((8, 5))
        op = DenseOperator(a)
        x = rng.standard_normal(5)
        y = rng.standard_normal(8)
        assert np.allclose(op.matvec(x), a @ x)
        assert np.allclose(op.rmatvec(y), a.T @ y)

    def test_matmat(self, rng):
        a = rng.standard_normal((8, 5))
        block = rng.standard_normal((5, 3))
        assert np.allclose(DenseOperator(a).matmat(block), a @ block)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            DenseOperator(np.ones(3))

    def test_counting_operator(self, rng):
        op = CountingOperator(DenseOperator(rng.standard_normal((6, 4))))
        op.matvec(np.ones(4))
        op.rmatvec(np.ones(6))
        op.matmat(np.ones((4, 2)))
        assert op.matvec_count == 3
        assert op.rmatvec_count == 1

    def test_generic_matmat_fallback(self, rng):
        class MyOp(LinearOperator):
            def __init__(self, a):
                self.a = a
                self.shape = a.shape

            def matvec(self, x):
                return self.a @ x

            def rmatvec(self, y):
                return self.a.T @ y

        a = rng.standard_normal((7, 4))
        op = MyOp(a)
        assert np.allclose(op.matmat(np.eye(4)), a)
        assert np.allclose(op.rmatmat(np.eye(7)), a.T)


class TestLanczos:
    def test_singular_values_match_dense(self, rng):
        a = spectrum_matrix(rng)
        result = lanczos_svd(a, 5)
        _, s, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(result.singular_values, s[:5], rtol=1e-6)

    def test_left_subspace_matches(self, rng):
        a = spectrum_matrix(rng)
        result = lanczos_svd(a, 4)
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        ours = result.left @ result.left.T
        reference = u[:, :4] @ u[:, :4].T
        assert np.allclose(ours, reference, atol=1e-6)

    def test_left_vectors_orthonormal(self, rng):
        result = lanczos_svd(spectrum_matrix(rng), 6)
        gram = result.left.T @ result.left
        assert np.allclose(gram, np.eye(6), atol=1e-8)

    def test_right_vectors_returned(self, rng):
        a = spectrum_matrix(rng)
        result = lanczos_svd(a, 3)
        assert result.right is not None
        # A v ≈ σ u for each triplet.
        for i in range(3):
            assert np.allclose(
                a @ result.right[:, i],
                result.singular_values[i] * result.left[:, i],
                atol=1e-6,
            )

    def test_counts_operator_applications(self, rng):
        op = CountingOperator(DenseOperator(spectrum_matrix(rng)))
        result = lanczos_svd(op, 3)
        assert result.matvecs == op.matvec_count > 0
        assert result.rmatvecs == op.rmatvec_count > 0

    def test_rank_larger_than_dims_clipped(self, rng):
        a = rng.standard_normal((10, 4))
        result = lanczos_svd(a, 9)
        assert result.rank == 4

    def test_rank_equal_to_min_dim(self, rng):
        a = rng.standard_normal((12, 5))
        result = lanczos_svd(a, 5)
        _, s, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(np.sort(result.singular_values)[::-1], s, rtol=1e-6)

    def test_invalid_rank(self, rng):
        with pytest.raises(ValueError):
            lanczos_svd(rng.standard_normal((5, 5)), 0)

    def test_deterministic_given_seed(self, rng):
        a = spectrum_matrix(rng)
        r1 = lanczos_svd(a, 4, seed=3)
        r2 = lanczos_svd(a, 4, seed=3)
        assert np.allclose(r1.left, r2.left)

    def test_rank_one_matrix(self, rng):
        u = rng.standard_normal(30)
        v = rng.standard_normal(8)
        a = np.outer(u, v)
        result = lanczos_svd(a, 2)
        assert np.isclose(result.singular_values[0],
                          np.linalg.norm(u) * np.linalg.norm(v), rtol=1e-8)
        assert result.singular_values[1] < 1e-6

    def test_zero_matrix(self):
        result = lanczos_svd(np.zeros((10, 6)), 2)
        assert np.allclose(result.singular_values, 0.0)


class TestRandomized:
    def test_singular_values_close(self, rng):
        a = spectrum_matrix(rng)
        result = randomized_svd(a, 5, power_iterations=3)
        _, s, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(result.singular_values, s[:5], rtol=1e-4)

    def test_orthonormal_output(self, rng):
        result = randomized_svd(spectrum_matrix(rng), 4)
        assert np.allclose(result.left.T @ result.left, np.eye(4), atol=1e-8)

    def test_invalid_rank(self, rng):
        with pytest.raises(ValueError):
            randomized_svd(rng.standard_normal((5, 5)), -1)


class TestDispatcher:
    def test_dense_method(self, rng):
        a = spectrum_matrix(rng)
        result = truncated_svd(a, 3, method="dense")
        _, s, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(result.singular_values, s[:3])

    def test_gram_method(self, rng):
        a = spectrum_matrix(rng)
        result = truncated_svd(a, 3, method="gram")
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(result.left @ result.left.T, u[:, :3] @ u[:, :3].T,
                           atol=1e-6)

    def test_methods_agree_on_subspace(self, rng):
        a = spectrum_matrix(rng)
        subspaces = []
        for method in ("lanczos", "randomized", "dense", "gram"):
            res = truncated_svd(a, 3, method=method)
            subspaces.append(res.left @ res.left.T)
        for other in subspaces[1:]:
            assert np.allclose(subspaces[0], other, atol=1e-5)

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            truncated_svd(rng.standard_normal((4, 4)), 2, method="magic")

    def test_dense_method_requires_matrix(self, rng):
        class Op(LinearOperator):
            shape = (4, 4)

        with pytest.raises(TypeError):
            truncated_svd(Op(), 2, method="dense")
