"""Unit tests for the matrix-free truncated SVD solvers."""

import numpy as np
import pytest

from repro.core import (
    CountingOperator,
    DenseOperator,
    LinearOperator,
    gram_svd,
    lanczos_svd,
    randomized_svd,
    truncated_svd,
)


def spectrum_matrix(rng, m=120, n=40, decay=0.5):
    """Matrix with a controlled, well-separated spectrum."""
    u, _ = np.linalg.qr(rng.standard_normal((m, n)))
    v, _ = np.linalg.qr(rng.standard_normal((n, n)))
    s = decay ** np.arange(n) * 10.0
    return (u * s) @ v.T


class TestDenseOperator:
    def test_matvec_rmatvec(self, rng):
        a = rng.standard_normal((8, 5))
        op = DenseOperator(a)
        x = rng.standard_normal(5)
        y = rng.standard_normal(8)
        assert np.allclose(op.matvec(x), a @ x)
        assert np.allclose(op.rmatvec(y), a.T @ y)

    def test_matmat(self, rng):
        a = rng.standard_normal((8, 5))
        block = rng.standard_normal((5, 3))
        assert np.allclose(DenseOperator(a).matmat(block), a @ block)

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            DenseOperator(np.ones(3))

    def test_counting_operator(self, rng):
        op = CountingOperator(DenseOperator(rng.standard_normal((6, 4))))
        op.matvec(np.ones(4))
        op.rmatvec(np.ones(6))
        op.matmat(np.ones((4, 2)))
        assert op.matvec_count == 3
        assert op.rmatvec_count == 1

    def test_generic_matmat_fallback(self, rng):
        class MyOp(LinearOperator):
            def __init__(self, a):
                self.a = a
                self.shape = a.shape

            def matvec(self, x):
                return self.a @ x

            def rmatvec(self, y):
                return self.a.T @ y

        a = rng.standard_normal((7, 4))
        op = MyOp(a)
        assert np.allclose(op.matmat(np.eye(4)), a)
        assert np.allclose(op.rmatmat(np.eye(7)), a.T)


class TestLanczos:
    def test_singular_values_match_dense(self, rng):
        a = spectrum_matrix(rng)
        result = lanczos_svd(a, 5)
        _, s, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(result.singular_values, s[:5], rtol=1e-6)

    def test_left_subspace_matches(self, rng):
        a = spectrum_matrix(rng)
        result = lanczos_svd(a, 4)
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        ours = result.left @ result.left.T
        reference = u[:, :4] @ u[:, :4].T
        assert np.allclose(ours, reference, atol=1e-6)

    def test_left_vectors_orthonormal(self, rng):
        result = lanczos_svd(spectrum_matrix(rng), 6)
        gram = result.left.T @ result.left
        assert np.allclose(gram, np.eye(6), atol=1e-8)

    def test_right_vectors_returned(self, rng):
        a = spectrum_matrix(rng)
        result = lanczos_svd(a, 3)
        assert result.right is not None
        # A v ≈ σ u for each triplet.
        for i in range(3):
            assert np.allclose(
                a @ result.right[:, i],
                result.singular_values[i] * result.left[:, i],
                atol=1e-6,
            )

    def test_counts_operator_applications(self, rng):
        op = CountingOperator(DenseOperator(spectrum_matrix(rng)))
        result = lanczos_svd(op, 3)
        assert result.matvecs == op.matvec_count > 0
        assert result.rmatvecs == op.rmatvec_count > 0

    def test_rank_larger_than_dims_clipped(self, rng):
        a = rng.standard_normal((10, 4))
        result = lanczos_svd(a, 9)
        assert result.rank == 4

    def test_rank_equal_to_min_dim(self, rng):
        a = rng.standard_normal((12, 5))
        result = lanczos_svd(a, 5)
        _, s, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(np.sort(result.singular_values)[::-1], s, rtol=1e-6)

    def test_invalid_rank(self, rng):
        with pytest.raises(ValueError):
            lanczos_svd(rng.standard_normal((5, 5)), 0)

    def test_deterministic_given_seed(self, rng):
        a = spectrum_matrix(rng)
        r1 = lanczos_svd(a, 4, seed=3)
        r2 = lanczos_svd(a, 4, seed=3)
        assert np.allclose(r1.left, r2.left)

    def test_rank_one_matrix(self, rng):
        u = rng.standard_normal(30)
        v = rng.standard_normal(8)
        a = np.outer(u, v)
        result = lanczos_svd(a, 2)
        assert np.isclose(result.singular_values[0],
                          np.linalg.norm(u) * np.linalg.norm(v), rtol=1e-8)
        assert result.singular_values[1] < 1e-6

    def test_zero_matrix(self):
        result = lanczos_svd(np.zeros((10, 6)), 2)
        assert np.allclose(result.singular_values, 0.0)


class TestRandomized:
    def test_singular_values_close(self, rng):
        a = spectrum_matrix(rng)
        result = randomized_svd(a, 5, power_iterations=3)
        _, s, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(result.singular_values, s[:5], rtol=1e-4)

    def test_orthonormal_output(self, rng):
        result = randomized_svd(spectrum_matrix(rng), 4)
        assert np.allclose(result.left.T @ result.left, np.eye(4), atol=1e-8)

    def test_invalid_rank(self, rng):
        with pytest.raises(ValueError):
            randomized_svd(rng.standard_normal((5, 5)), -1)


class TestDispatcher:
    def test_dense_method(self, rng):
        a = spectrum_matrix(rng)
        result = truncated_svd(a, 3, method="dense")
        _, s, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(result.singular_values, s[:3])

    def test_gram_method(self, rng):
        a = spectrum_matrix(rng)
        result = truncated_svd(a, 3, method="gram")
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(result.left @ result.left.T, u[:, :3] @ u[:, :3].T,
                           atol=1e-6)

    def test_methods_agree_on_subspace(self, rng):
        a = spectrum_matrix(rng)
        subspaces = []
        for method in ("lanczos", "randomized", "dense", "gram"):
            res = truncated_svd(a, 3, method=method)
            subspaces.append(res.left @ res.left.T)
        for other in subspaces[1:]:
            assert np.allclose(subspaces[0], other, atol=1e-5)

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            truncated_svd(rng.standard_normal((4, 4)), 2, method="magic")

    def test_dense_method_requires_matrix(self, rng):
        class Op(LinearOperator):
            shape = (4, 4)

        with pytest.raises(TypeError):
            truncated_svd(Op(), 2, method="dense")


class TestGramSVD:
    """The W×W Gram path: eigh(YᵀY) + U = Y V Σ⁻¹ for tall-skinny operands."""

    def test_matches_dense_svd_on_tall_matrix(self, rng):
        a = spectrum_matrix(rng, m=500, n=12)
        result = gram_svd(a, 4)
        u, s, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(result.singular_values, s[:4], rtol=1e-8)
        assert np.allclose(
            result.left @ result.left.T, u[:, :4] @ u[:, :4].T, atol=1e-7
        )
        # Left vectors are orthonormal and the right factor is returned.
        assert np.allclose(result.left.T @ result.left, np.eye(4), atol=1e-10)
        assert result.right.shape == (12, 4)

    def test_reconstruction(self, rng):
        a = spectrum_matrix(rng, m=200, n=8)
        res = gram_svd(a, 8)
        approx = (res.left * res.singular_values) @ res.right.T
        assert np.allclose(approx, a, atol=1e-7)

    def test_rank_deficient_stays_orthonormal(self, rng):
        # Rank-2 matrix, rank-4 request: the squashed directions must be
        # completed to an orthonormal basis instead of returning garbage.
        a = np.outer(rng.standard_normal(60), rng.standard_normal(6))
        a += np.outer(rng.standard_normal(60), rng.standard_normal(6))
        res = gram_svd(a, 4)
        assert np.allclose(res.left.T @ res.left, np.eye(4), atol=1e-8)
        assert res.singular_values[2] < 1e-6 * res.singular_values[0]

    def test_float32_operand_keeps_cheap_gemm(self, rng):
        a = spectrum_matrix(rng, m=300, n=10).astype(np.float32)
        res = gram_svd(a, 3)
        u, s, _ = np.linalg.svd(np.asarray(a, dtype=np.float64),
                                full_matrices=False)
        assert np.allclose(res.singular_values, s[:3], rtol=1e-3)
        assert np.allclose(
            res.left @ res.left.T, u[:, :3] @ u[:, :3].T, atol=1e-3
        )

    def test_invalid_inputs(self, rng):
        with pytest.raises(ValueError):
            gram_svd(rng.standard_normal((5, 3)), 0)
        with pytest.raises(ValueError):
            gram_svd(np.ones(4), 2)

    def test_hooi_gram_option_close_to_lanczos(self, rng):
        from repro.core import HOOIOptions, SparseTensor, hooi

        idx = rng.integers(0, 25, size=(800, 3))
        tensor = SparseTensor(idx, rng.standard_normal(800), (25, 25, 25),
                              sum_duplicates=True)
        lanczos = hooi(tensor, 4, HOOIOptions(
            max_iterations=3, init="hosvd", seed=0, trsvd_method="lanczos"))
        gram = hooi(tensor, 4, HOOIOptions(
            max_iterations=3, init="hosvd", seed=0, trsvd_method="gram"))
        assert abs(lanczos.fit - gram.fit) < 1e-6

    def test_distributed_rejects_gram(self, rng):
        from repro.core import HOOIOptions, SparseTensor
        from repro.distributed import distributed_hooi
        from repro.partition import make_partition

        idx = rng.integers(0, 10, size=(100, 3))
        tensor = SparseTensor(idx, rng.standard_normal(100), (10, 10, 10),
                              sum_duplicates=True)
        partition = make_partition(tensor, 2, "coarse-bl")
        with pytest.raises(ValueError, match="lanczos"):
            distributed_hooi(tensor, 3, partition,
                             HOOIOptions(max_iterations=1, trsvd_method="gram"))
