"""Property-based tests (hypothesis) on the core data structures and invariants."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    SparseTensor,
    batch_kron_rows,
    dense_ttm_chain,
    fold,
    kron_rows,
    symbolic_ttmc,
    ttmc_matricized,
    unfold,
)
from repro.core.trsvd import lanczos_svd
from repro.distributed import build_plans
from repro.engine.dimtree import DimensionTree
from repro.sparse import CSFTensor, csf_ttmc_matricized
from repro.partition import (
    Hypergraph,
    connectivity_cutsize,
    make_partition,
    partition_hypergraph,
)
from repro.partition.multilevel import PartitionerOptions

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def sparse_tensors(draw, max_order=4, max_dim=12, max_nnz=60):
    order = draw(st.integers(min_value=2, max_value=max_order))
    shape = tuple(
        draw(st.integers(min_value=2, max_value=max_dim)) for _ in range(order)
    )
    nnz = draw(st.integers(min_value=0, max_value=max_nnz))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    if nnz == 0:
        return SparseTensor.empty(shape)
    indices = np.column_stack([rng.integers(0, s, nnz) for s in shape])
    values = rng.standard_normal(nnz)
    return SparseTensor(indices, values, shape, sum_duplicates=True)


class TestSparseTensorProperties:
    @SETTINGS
    @given(sparse_tensors())
    def test_dense_roundtrip(self, tensor):
        assert SparseTensor.from_dense(tensor.to_dense()).allclose(tensor)

    @SETTINGS
    @given(sparse_tensors())
    def test_norm_matches_dense(self, tensor):
        assert np.isclose(tensor.norm(), np.linalg.norm(tensor.to_dense().ravel()))

    @SETTINGS
    @given(sparse_tensors(), st.integers(min_value=0, max_value=3))
    def test_matricize_matches_dense_unfold(self, tensor, mode_raw):
        mode = mode_raw % tensor.order
        assert np.allclose(
            tensor.matricize(mode).toarray(), unfold(tensor.to_dense(), mode)
        )

    @SETTINGS
    @given(sparse_tensors())
    def test_deduplicate_idempotent(self, tensor):
        once = tensor.deduplicate()
        twice = once.deduplicate()
        assert once.nnz == twice.nnz
        assert once.allclose(twice)

    @SETTINGS
    @given(sparse_tensors(), st.floats(min_value=-3, max_value=3, allow_nan=False))
    def test_scale_linearity(self, tensor, alpha):
        assert np.allclose(tensor.scale(alpha).to_dense(), alpha * tensor.to_dense())

    @SETTINGS
    @given(sparse_tensors())
    def test_mode_counts_sum_to_nnz(self, tensor):
        for mode in range(tensor.order):
            assert tensor.mode_counts(mode).sum() == tensor.nnz


class TestUnfoldProperties:
    @SETTINGS
    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=4, min_side=1, max_side=6),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        ),
        st.integers(min_value=0, max_value=3),
    )
    def test_fold_inverts_unfold(self, array, mode_raw):
        mode = mode_raw % array.ndim
        assert np.allclose(fold(unfold(array, mode), mode, array.shape), array)

    @SETTINGS
    @given(
        hnp.arrays(
            np.float64,
            hnp.array_shapes(min_dims=2, max_dims=3, min_side=1, max_side=6),
            elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
        ),
        st.integers(min_value=0, max_value=2),
    )
    def test_unfold_preserves_norm(self, array, mode_raw):
        mode = mode_raw % array.ndim
        assert np.isclose(np.linalg.norm(unfold(array, mode)), np.linalg.norm(array))


class TestKronProperties:
    @SETTINGS
    @given(st.integers(0, 2**31 - 1), st.integers(1, 5), st.integers(1, 5))
    def test_kron_norm_multiplicative(self, seed, la, lb):
        rng = np.random.default_rng(seed)
        a, b = rng.standard_normal(la), rng.standard_normal(lb)
        assert np.isclose(
            np.linalg.norm(kron_rows([a, b])),
            np.linalg.norm(a) * np.linalg.norm(b),
        )

    @SETTINGS
    @given(st.integers(0, 2**31 - 1), st.integers(1, 6), st.integers(1, 4),
           st.integers(1, 4))
    def test_batch_consistent_with_single(self, seed, m, la, lb):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, la))
        b = rng.standard_normal((m, lb))
        batch = batch_kron_rows([a, b])
        for p in range(m):
            assert np.allclose(batch[p], kron_rows([a[p], b[p]]))


class TestTTMcProperties:
    @SETTINGS
    @given(sparse_tensors(max_order=3, max_dim=10, max_nnz=40),
           st.integers(min_value=0, max_value=2),
           st.integers(0, 2**31 - 1))
    def test_ttmc_matches_dense(self, tensor, mode_raw, seed):
        mode = mode_raw % tensor.order
        rng = np.random.default_rng(seed)
        factors = [
            np.linalg.qr(rng.standard_normal((s, min(2, s))))[0] for s in tensor.shape
        ]
        ours = ttmc_matricized(tensor, factors, mode)
        expected = unfold(
            dense_ttm_chain(tensor.to_dense(), factors, skip=mode, transpose=True),
            mode,
        )
        assert np.allclose(ours, expected, atol=1e-10)

    @SETTINGS
    @given(sparse_tensors(max_order=3, max_dim=10, max_nnz=40),
           st.integers(0, 2**31 - 1))
    def test_ttmc_linear_in_tensor_values(self, tensor, seed):
        if tensor.nnz == 0:
            return
        rng = np.random.default_rng(seed)
        factors = [
            np.linalg.qr(rng.standard_normal((s, min(2, s))))[0] for s in tensor.shape
        ]
        doubled = SparseTensor(tensor.indices, 2.0 * tensor.values, tensor.shape)
        assert np.allclose(
            ttmc_matricized(doubled, factors, 0),
            2.0 * ttmc_matricized(tensor, factors, 0),
        )

    @SETTINGS
    @given(sparse_tensors(max_order=4, max_dim=10, max_nnz=50),
           st.integers(min_value=0, max_value=3))
    def test_symbolic_invariants(self, tensor, mode_raw):
        mode = mode_raw % tensor.order
        sym = symbolic_ttmc(tensor, mode)
        assert sym.rowptr[0] == 0
        assert sym.rowptr[-1] == tensor.nnz
        assert np.all(np.diff(sym.rowptr) >= 1) or sym.num_rows == 0
        assert sym.row_sizes().sum() == tensor.nnz


class TestCSFProperties:
    """The CSF tree is a lossless re-encoding: round-trips exactly and its
    TTMc agrees with the COO kernel for every mode and mode ordering."""

    @SETTINGS
    @given(sparse_tensors(max_order=4, max_dim=10, max_nnz=50),
           st.integers(0, 2**31 - 1))
    def test_coo_csf_coo_roundtrip(self, tensor, seed):
        rng = np.random.default_rng(seed)
        mode_order = tuple(rng.permutation(tensor.order).tolist())
        back = CSFTensor(tensor, mode_order=mode_order).to_coo()
        assert back.shape == tensor.shape
        assert back.nnz == tensor.nnz
        # No arithmetic happens, so the round-trip is bit-exact.
        assert back.allclose(tensor, rtol=0.0, atol=0.0)

    @SETTINGS
    @given(sparse_tensors(max_order=4, max_dim=10, max_nnz=50),
           st.integers(0, 2**31 - 1))
    def test_ttmc_parity_every_mode(self, tensor, seed):
        rng = np.random.default_rng(seed)
        mode_order = tuple(rng.permutation(tensor.order).tolist())
        csf = CSFTensor(tensor, mode_order=mode_order)
        factors = [
            rng.standard_normal((s, int(rng.integers(1, min(3, s) + 1))))
            for s in tensor.shape
        ]
        for mode in range(tensor.order):
            expected = ttmc_matricized(tensor, factors, mode)
            result = csf_ttmc_matricized(csf, factors, mode)
            assert result.shape == expected.shape
            assert np.allclose(result, expected, atol=1e-10)

    @SETTINGS
    @given(sparse_tensors(max_order=4, max_dim=10, max_nnz=50))
    def test_fiber_counts_monotone_and_conservative(self, tensor):
        csf = CSFTensor(tensor)
        sizes = [csf.num_fibers(level) for level in range(csf.order)]
        assert sizes[-1] == tensor.nnz
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))
        for level in range(csf.order - 1):
            assert csf.fptr[level][-1] == sizes[level + 1]


class TestLanczosProperties:
    @SETTINGS
    @given(st.integers(0, 2**31 - 1), st.integers(6, 20), st.integers(3, 8),
           st.integers(1, 3))
    def test_singular_values_match_numpy(self, seed, m, n, k):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, n))
        k = min(k, min(m, n))
        result = lanczos_svd(a, k, seed=0)
        _, s, _ = np.linalg.svd(a, full_matrices=False)
        assert np.allclose(np.sort(result.singular_values)[::-1], s[:k],
                           rtol=1e-5, atol=1e-8)


def _orthonormal_factors(tensor, seed, max_rank=3):
    rng = np.random.default_rng(seed)
    return [
        np.linalg.qr(rng.standard_normal((s, min(max_rank, s))))[0]
        for s in tensor.shape
    ]


class TestDimTreeInvalidationProperties:
    """The dimension tree's cache-invalidation contract, on random shapes.

    After refreshing ``U_n`` only the root-to-leaf path of ``n`` stays
    fresh, and the following full sweep recomputes exactly the off-path
    non-root nodes — for any tensor order, shape and update sequence, not
    just the hand-picked cases.
    """

    @SETTINGS
    @given(sparse_tensors(max_order=4, max_dim=10, max_nnz=50),
           st.integers(min_value=0, max_value=3),
           st.integers(0, 2**31 - 1))
    def test_invalidation_keeps_exactly_the_path(self, tensor, mode_raw, seed):
        mode = mode_raw % tensor.order
        factors = _orthonormal_factors(tensor, seed)
        tree = DimensionTree(tensor)
        for m in range(tensor.order):
            tree.leaf_matricized(m, factors)
        assert set(tree.fresh_nodes()) == set(tree.nodes)

        tree.invalidate_factor(mode)
        assert set(tree.fresh_nodes()) == set(tree.path(mode))

    @SETTINGS
    @given(sparse_tensors(max_order=4, max_dim=10, max_nnz=50),
           st.lists(st.integers(min_value=0, max_value=3), min_size=1,
                    max_size=4),
           st.integers(0, 2**31 - 1))
    def test_sweep_recomputes_each_offpath_node_once(
        self, tensor, modes_raw, seed
    ):
        factors = _orthonormal_factors(tensor, seed)
        tree = DimensionTree(tensor)
        for m in range(tensor.order):
            tree.leaf_matricized(m, factors)
        rng = np.random.default_rng(seed)
        for raw in modes_raw:
            mode = raw % tensor.order
            # Replace U_mode and invalidate, as a factor update would.
            factors[mode] = np.linalg.qr(
                rng.standard_normal(factors[mode].shape)
            )[0]
            tree.invalidate_factor(mode)
            before = tree.edge_updates
            for m in range(tensor.order):
                tree.leaf_matricized(m, factors)
            # Off-path non-root nodes are recomputed exactly once each;
            # the path of `mode` stayed fresh.
            expected = len(tree.nodes) - len(tree.path(mode))
            assert tree.edge_updates - before == expected

    @SETTINGS
    @given(sparse_tensors(max_order=4, max_dim=10, max_nnz=50),
           st.integers(min_value=0, max_value=3),
           st.integers(0, 2**31 - 1))
    def test_leaf_matches_per_mode_after_update(self, tensor, mode_raw, seed):
        mode = mode_raw % tensor.order
        factors = _orthonormal_factors(tensor, seed)
        tree = DimensionTree(tensor)
        for m in range(tensor.order):
            tree.leaf_matricized(m, factors)
        rng = np.random.default_rng(seed + 1)
        factors[mode] = np.linalg.qr(
            rng.standard_normal(factors[mode].shape)
        )[0]
        tree.invalidate_factor(mode)
        for m in range(tensor.order):
            assert np.allclose(
                tree.leaf_matricized(m, factors),
                ttmc_matricized(tensor, factors, m),
                atol=1e-10,
            )


@st.composite
def partitioned_tensors(draw):
    """A random 3-mode tensor plus a random partition of it."""
    shape = tuple(draw(st.integers(min_value=4, max_value=12)) for _ in range(3))
    nnz = draw(st.integers(min_value=20, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    indices = np.column_stack([rng.integers(0, s, nnz) for s in shape])
    values = rng.standard_normal(nnz)
    tensor = SparseTensor(indices, values, shape, sum_duplicates=True)
    strategy = draw(st.sampled_from(["fine-rd", "fine-hp", "coarse-bl",
                                     "coarse-hp"]))
    parts = draw(st.integers(min_value=2, max_value=4))
    return tensor, make_partition(tensor, parts, strategy, seed=seed % 1000)


class TestDistributedOwnershipProperties:
    """Row-ownership / exchange invariants of the distribution plans.

    For any tensor and partition: the owned rows partition every mode, and
    every row a rank needs but does not own is received from exactly one
    peer — its owner — exactly once per mode.
    """

    OWN_SETTINGS = settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow,
                               HealthCheck.data_too_large],
    )

    @OWN_SETTINGS
    @given(partitioned_tensors())
    def test_owned_rows_partition_every_mode(self, case):
        tensor, partition = case
        _, plans = build_plans(tensor, partition, 2)
        for mode in range(tensor.order):
            owned = np.concatenate([p.modes[mode].owned_rows for p in plans])
            assert sorted(owned.tolist()) == list(range(tensor.shape[mode]))

    @OWN_SETTINGS
    @given(partitioned_tensors())
    def test_every_needed_row_exchanged_exactly_once(self, case):
        tensor, partition = case
        _, plans = build_plans(tensor, partition, 2)
        for mode in range(tensor.order):
            row_owner = partition.row_owner[mode]
            for plan in plans:
                mp = plan.modes[mode]
                owned = set(mp.owned_rows.tolist())
                received = [
                    int(r)
                    for peer, rows in mp.factor_exchange.receive.items()
                    for r in rows
                ]
                # ... exactly once: no duplicates across (or within) peers.
                assert len(received) == len(set(received))
                # ... never a row the rank already owns.
                assert not (set(received) & owned)
                # ... always from the row's owner.
                for peer, rows in mp.factor_exchange.receive.items():
                    assert np.all(row_owner[rows] == peer)
                # ... and together they cover everything the rank needs.
                assert set(mp.local_rows.tolist()) <= owned | set(received)

    @OWN_SETTINGS
    @given(partitioned_tensors())
    def test_exchange_send_receive_are_mirror_images(self, case):
        tensor, partition = case
        _, plans = build_plans(tensor, partition, 2)
        for mode in range(tensor.order):
            for receiver, plan in enumerate(plans):
                for owner, rows in plan.modes[mode].factor_exchange.receive.items():
                    send = plans[owner].modes[mode].factor_exchange.send
                    assert receiver in send
                    assert np.array_equal(np.sort(send[receiver]),
                                          np.sort(rows))


class TestPartitionProperties:
    @SETTINGS
    @given(st.integers(0, 2**31 - 1), st.integers(10, 60), st.integers(2, 5))
    def test_partition_is_valid_and_cut_nonnegative(self, seed, num_vertices, parts):
        rng = np.random.default_rng(seed)
        nets = [
            rng.choice(num_vertices, size=int(rng.integers(2, min(5, num_vertices) + 1)),
                       replace=False)
            for _ in range(num_vertices)
        ]
        hg = Hypergraph(num_vertices, nets)
        assignment = partition_hypergraph(
            hg, parts, options=PartitionerOptions(seed=0, initial_trials=2,
                                                  refine_passes=2)
        )
        assert assignment.shape == (num_vertices,)
        assert assignment.min() >= 0 and assignment.max() < parts
        cut = connectivity_cutsize(hg, assignment, parts)
        assert 0 <= cut <= int(hg.net_costs.sum()) * (parts - 1)
