"""Streaming Tucker tests: ingestion equivalence, warm starts, out-of-core.

The load-bearing contracts, in the order the module stack builds them:

* **Bit-identity** — a :class:`~repro.streaming.StreamingTensor` fed any
  split of a nonzero stream (any batch sizes, duplicates landing in any
  batch) stores exactly the arrays a one-shot
  :class:`~repro.core.sparse_tensor.SparseTensor` build produces, and its
  incrementally-maintained CSF tree matches a from-scratch
  :class:`~repro.sparse.csf.CSFTensor` level by level (hypothesis-tested).
* **Incremental identity** — :func:`repro.core.sparse_tensor.
  fingerprint_with_delta` extends a fingerprint in O(batch) to exactly the
  digest a full re-hash would produce.
* **Warm starts** — ``resume_factors`` seeds a run deterministically (same
  init ⇒ same trajectory to 1e-10) and never loses a converged fit.
* **Out-of-core** — the memory-mapped CSF pipeline reproduces the
  in-memory decomposition to 1e-10 while keeping the heap-resident tree
  bytes near zero.
"""

import asyncio

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.hooi import HOOIOptions, hooi
from repro.core.hosvd import initialize_factors
from repro.core.sparse_tensor import SparseTensor, fingerprint_with_delta
from repro.data.io import iter_tns_chunks, read_tns, write_tns
from repro.data.lowrank import planted_lowrank_tensor
from repro.sparse.csf import CSFTensor
from repro.streaming import (
    DeltaBatch,
    StreamingSession,
    StreamingTensor,
    adaptive_sweep_budget,
    apply_delta,
    build_out_of_core,
    conform_factors,
    out_of_core_hooi,
    streaming_hooi,
)

SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def entry_streams(draw, max_order=4, max_dim=9, max_nnz=48, max_batches=5):
    """A nonzero stream with duplicates, plus a random split into batches."""
    order = draw(st.integers(min_value=1, max_value=max_order))
    shape = tuple(
        draw(st.integers(min_value=2, max_value=max_dim)) for _ in range(order)
    )
    nnz = draw(st.integers(min_value=1, max_value=max_nnz))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    indices = np.column_stack(
        [rng.integers(0, s, nnz) for s in shape]
    ).astype(np.int64)
    if nnz > 4 and draw(st.booleans()):
        # Plant explicit duplicates so the same coordinate lands in
        # different batches, not only when the RNG happens to collide.
        dup = rng.integers(0, nnz, nnz // 3)
        indices[dup] = indices[rng.integers(0, nnz, nnz // 3)]
    values = rng.standard_normal(nnz)
    n_batches = draw(st.integers(min_value=1, max_value=max_batches))
    cuts = sorted(
        draw(
            st.lists(
                st.integers(min_value=0, max_value=nnz),
                min_size=n_batches - 1,
                max_size=n_batches - 1,
            )
        )
    )
    bounds = [0, *cuts, nnz]
    batches = [
        (indices[a:b], values[a:b]) for a, b in zip(bounds[:-1], bounds[1:])
    ]
    return shape, indices, values, batches


class TestDeltaBatch:
    def test_merges_duplicates_like_one_shot(self):
        idx = np.array([[1, 2], [0, 1], [1, 2], [0, 1]], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0, 4.0])
        batch = DeltaBatch(idx, vals)
        ref = SparseTensor(idx, vals, (3, 3), sum_duplicates=True)
        assert np.array_equal(batch.indices, ref.indices)
        assert np.array_equal(batch.values, ref.values)

    def test_unmerged_keeps_entries_verbatim(self):
        idx = np.array([[1], [1]], dtype=np.int64)
        batch = DeltaBatch(idx, [1.0, 2.0], merge_duplicates=False)
        assert batch.nnz == 2

    def test_rejects_negative_indices(self):
        with pytest.raises(ValueError, match="negative"):
            DeltaBatch(np.array([[-1, 0]]), [1.0])

    def test_extents(self):
        batch = DeltaBatch(np.array([[4, 1], [2, 6]]), [1.0, 2.0])
        assert batch.extents() == (5, 7)
        assert DeltaBatch(np.empty((0, 3)), []).extents() == (0, 0, 0)

    def test_coerce(self):
        batch = DeltaBatch(np.array([[0, 0]]), [1.0])
        assert DeltaBatch.coerce(batch) is batch
        tensor = SparseTensor(
            np.array([[1, 1]]), np.array([2.0]), (2, 2)
        )
        from_tensor = DeltaBatch.coerce(tensor)
        assert np.array_equal(from_tensor.indices, tensor.indices)
        pair = DeltaBatch.coerce((np.array([[0, 1]]), [3.0]))
        assert pair.nnz == 1
        with pytest.raises(TypeError, match="DeltaBatch"):
            DeltaBatch.coerce(42)

    def test_fingerprint_is_order_invariant(self):
        idx = np.array([[2, 0], [0, 1], [1, 2]], dtype=np.int64)
        vals = np.array([1.0, 2.0, 3.0])
        a = DeltaBatch(idx, vals, merge_duplicates=False)
        perm = [2, 0, 1]
        b = DeltaBatch(idx[perm], vals[perm], merge_duplicates=False)
        assert a.fingerprint() == b.fingerprint()
        c = DeltaBatch(idx, vals + 1.0, merge_duplicates=False)
        assert a.fingerprint() != c.fingerprint()


class TestApplyDelta:
    def test_matches_one_shot_concat(self):
        rng = np.random.default_rng(0)
        base_idx = np.column_stack([rng.integers(0, 5, 30)] * 3)
        base_vals = rng.standard_normal(30)
        tensor = SparseTensor(base_idx, base_vals, (5, 5, 5), sum_duplicates=True)
        new_idx = np.column_stack([rng.integers(0, 7, 20)] * 3)
        new_vals = rng.standard_normal(20)
        grown = apply_delta(
            tensor, DeltaBatch(new_idx, new_vals, merge_duplicates=False)
        )
        ref = SparseTensor(
            np.vstack([tensor.indices, new_idx]),
            np.concatenate([tensor.values, new_vals]),
            (7, 7, 7),
            sum_duplicates=True,
        )
        assert grown.shape == (7, 7, 7)
        assert np.array_equal(grown.indices, ref.indices)
        assert np.array_equal(grown.values, ref.values)

    def test_order_mismatch_rejected(self):
        tensor = SparseTensor(np.array([[0, 0]]), np.array([1.0]), (2, 2))
        with pytest.raises(ValueError, match="mode"):
            apply_delta(tensor, DeltaBatch(np.array([[0, 0, 0]]), [1.0]))


class TestStreamingBitIdentity:
    @SETTINGS
    @given(entry_streams())
    def test_any_split_matches_one_shot(self, stream_case):
        shape, indices, values, batches = stream_case
        one_shot = SparseTensor(indices, values, shape, sum_duplicates=True)
        stream = StreamingTensor(shape=shape)
        for bidx, bvals in batches:
            stream.append(
                DeltaBatch(bidx, bvals, merge_duplicates=False, copy=False)
            )
            # Build the tree early so later appends exercise the
            # incremental CSF maintenance, not a final one-shot build.
            stream.to_csf()
        merged = stream.tensor
        assert merged.shape == one_shot.shape
        assert np.array_equal(merged.indices, one_shot.indices)
        assert np.array_equal(merged.values, one_shot.values)

        tree = stream.to_csf()
        ref = CSFTensor(one_shot, mode_order=stream.mode_order)
        assert np.array_equal(tree.values, ref.values)
        for mine, theirs in zip(tree.fids, ref.fids):
            assert np.array_equal(mine, theirs)
        for mine, theirs in zip(tree.fptr, ref.fptr):
            assert np.array_equal(mine, theirs)

    @SETTINGS
    @given(entry_streams())
    def test_shape_growth_across_batches(self, stream_case):
        _, indices, values, batches = stream_case
        extents = tuple(int(m) + 1 for m in indices.max(axis=0))
        one_shot = SparseTensor(indices, values, extents, sum_duplicates=True)
        stream = StreamingTensor()  # shape discovered batch by batch
        for bidx, bvals in batches:
            stream.append(
                DeltaBatch(bidx, bvals, merge_duplicates=False, copy=False)
            )
        merged = stream.tensor
        assert merged.shape == extents
        assert np.array_equal(merged.indices, one_shot.indices)
        assert np.array_equal(merged.values, one_shot.values)

    def test_fingerprint_matches_one_shot(self):
        rng = np.random.default_rng(3)
        idx = np.column_stack([rng.integers(0, 6, 40) for _ in range(3)])
        vals = rng.standard_normal(40)
        one_shot = SparseTensor(idx, vals, (6, 6, 6), sum_duplicates=True)
        stream = StreamingTensor(shape=(6, 6, 6))
        stream.append(DeltaBatch(idx[:25], vals[:25], merge_duplicates=False))
        stream.append(DeltaBatch(idx[25:], vals[25:], merge_duplicates=False))
        assert stream.fingerprint() == one_shot.fingerprint()


class TestCSFMaintenance:
    def _stream(self):
        rng = np.random.default_rng(7)
        idx = np.column_stack([rng.integers(0, 40, 600) for _ in range(3)])
        vals = rng.standard_normal(600)
        stream = StreamingTensor(shape=(40, 40, 40))
        stream.append(DeltaBatch(idx, vals, merge_duplicates=False))
        stream.to_csf()
        return stream

    def test_value_only_append_is_in_place(self):
        stream = self._stream()
        tree_before = stream.to_csf()
        existing = stream.to_coo().indices[:5].copy()
        stats = stream.append(DeltaBatch(existing, np.ones(5)))
        assert stats.csf_action == "in-place"
        assert stats.new_coords == 0
        assert stream.to_csf() is tree_before

    def test_small_batch_splices_slabs(self):
        stream = self._stream()
        stats = stream.append(
            DeltaBatch(np.array([[0, 1, 2], [39, 5, 5]]), [1.0, 1.0])
        )
        assert stats.csf_action == "merged"
        assert stats.touched_fraction < 0.25
        assert stream.csf_slab_merges >= 1

    def test_large_batch_rebuilds(self):
        stream = self._stream()
        rng = np.random.default_rng(8)
        idx = np.column_stack([rng.integers(0, 40, 600) for _ in range(3)])
        stats = stream.append(
            DeltaBatch(idx, rng.standard_normal(600), merge_duplicates=False)
        )
        assert stats.csf_action == "rebuilt"
        assert stream.csf_rebuilds >= 1


class TestIncrementalFingerprint:
    @SETTINGS
    @given(entry_streams())
    def test_extension_equals_full_rehash(self, stream_case):
        shape, indices, values, batches = stream_case
        head_idx, head_vals = batches[0]
        base = SparseTensor(head_idx, head_vals, shape).delta_fingerprint()
        n = len(head_vals)
        for bidx, bvals in batches[1:]:
            base = fingerprint_with_delta(base, bidx, bvals)
            n += len(bvals)
            full = SparseTensor(
                indices[:n], values[:n], shape
            ).delta_fingerprint()
            assert base == full
        assert base.count == len(values)

    @SETTINGS
    @given(entry_streams())
    def test_stream_digest_is_split_invariant(self, stream_case):
        shape, indices, values, batches = stream_case
        split = StreamingTensor(shape=shape)
        for bidx, bvals in batches:
            split.append(DeltaBatch(bidx, bvals, merge_duplicates=False))
        whole = StreamingTensor(shape=shape)
        whole.append(DeltaBatch(indices, values, merge_duplicates=False))
        assert (
            split.delta_fingerprint().hexdigest()
            == whole.delta_fingerprint().hexdigest()
        )


class TestWarmStart:
    def test_conform_factors_identity(self):
        factors = [np.eye(6)[:, :2], np.eye(4)[:, :3]]
        out = conform_factors(factors, (6, 4), (2, 3))
        for a, b in zip(out, factors):
            assert np.array_equal(a, b)
            assert a is not b  # defensive copy

    def test_conform_factors_grows_rows(self):
        old = np.arange(8.0).reshape(4, 2)
        (out,) = conform_factors([old], (7,), (2,))
        assert out.shape == (7, 2)
        assert np.array_equal(out[:4], old)
        assert np.all(np.isfinite(out[4:]))

    def test_conform_factors_truncates_ranks(self):
        old = np.random.default_rng(0).standard_normal((5, 4))
        (out,) = conform_factors([old], (5,), (2,))
        assert out.shape == (5, 2)
        assert np.array_equal(out, old[:, :2])

    def test_conform_factors_rejects_shrunk_mode(self):
        with pytest.raises(ValueError, match="grow"):
            conform_factors([np.zeros((6, 2))], (4,), (2,))

    def test_adaptive_sweep_budget(self):
        assert adaptive_sweep_budget(0, 1000, base_sweeps=20) == 1
        assert adaptive_sweep_budget(1000, 1000, base_sweeps=20) == 20
        assert adaptive_sweep_budget(10, 1000, base_sweeps=20) == 2
        assert (
            adaptive_sweep_budget(1, 10**6, base_sweeps=8, min_sweeps=3) == 3
        )
        assert adaptive_sweep_budget(5, 0, base_sweeps=4) == 4

    def test_warm_run_is_deterministic(self):
        tensor, _truth = planted_lowrank_tensor(
            (15, 12, 10), (3, 3, 3), 800, noise=0.05, seed=1
        )
        ranks = [3, 3, 3]
        opts = HOOIOptions(init="random", seed=0, max_iterations=5)
        cold = hooi(tensor, ranks, opts)
        seed_factors = initialize_factors(
            tensor, ranks, init="random", seed=0
        )
        warm = streaming_hooi(
            tensor, ranks, opts, resume_factors=seed_factors
        )
        assert abs(warm.fit - cold.fit) < 1e-10
        for a, b in zip(
            warm.decomposition.factors, cold.decomposition.factors
        ):
            np.testing.assert_allclose(a, b, atol=1e-10)

    def test_warm_start_never_loses_fit(self):
        tensor, _truth = planted_lowrank_tensor(
            (15, 12, 10), (3, 3, 3), 800, noise=0.05, seed=2
        )
        ranks = [3, 3, 3]
        cold = hooi(
            tensor, ranks, HOOIOptions(init="random", seed=0, max_iterations=8)
        )
        warm = streaming_hooi(
            tensor,
            ranks,
            resume_factors=cold.decomposition.factors,
            init="random",
            seed=0,
            max_iterations=3,
        )
        assert warm.fit >= cold.fit - 1e-12

    def test_decompose_accepts_stream_and_resume_factors(self):
        from repro import decompose

        tensor, _truth = planted_lowrank_tensor(
            (12, 10, 8), (2, 2, 2), 500, noise=0.05, seed=4
        )
        stream = StreamingTensor(shape=tensor.shape)
        stream.append(DeltaBatch.from_tensor(tensor))
        cold = decompose(stream, 2, max_iterations=4, seed=0)
        warm = decompose(
            stream,
            2,
            resume_factors=cold.decomposition.factors,
            max_iterations=2,
            seed=0,
        )
        assert warm.fit >= cold.fit - 1e-12

    def test_distributed_rejects_resume_factors(self):
        from repro import decompose

        tensor, _truth = planted_lowrank_tensor(
            (8, 8, 8), (2, 2, 2), 200, noise=0.0, seed=5
        )
        with pytest.raises(ValueError, match="single-node"):
            decompose(
                tensor,
                2,
                execution="distributed",
                resume_factors=[np.zeros((8, 2))] * 3,
            )

    def test_session_accumulates_updates(self):
        tensor, _truth = planted_lowrank_tensor(
            (14, 12, 10), (3, 3, 3), 900, noise=0.05, seed=6
        )
        stream = StreamingTensor(shape=tensor.shape)
        stream.append(DeltaBatch.from_tensor(tensor))
        session = StreamingSession(
            stream, (3, 3, 3), init="random", seed=0, max_iterations=6
        )
        first = session.update()
        assert session.updates == 1
        assert session.total_sweeps == first.iterations
        rng = np.random.default_rng(9)
        bidx = np.column_stack(
            [rng.integers(0, s, 40) for s in tensor.shape]
        )
        second = session.update(DeltaBatch(bidx, rng.standard_normal(40)))
        assert session.updates == 2
        # The adaptive budget keeps the warm sweep count below the base.
        assert second.iterations < first.iterations
        assert session.total_sweeps == first.iterations + second.iterations
        assert session.last_result is second


class TestOutOfCore:
    def test_parity_with_in_memory(self, tmp_path):
        tensor, _truth = planted_lowrank_tensor(
            (18, 15, 12), (3, 3, 3), 1200, noise=0.05, seed=10
        )
        handle = build_out_of_core(tensor, tmp_path / "ooc")
        assert handle.resident_bytes() == 0  # nothing loaded yet
        in_memory = hooi(
            tensor,
            [3, 3, 3],
            HOOIOptions(
                init="random", seed=0, max_iterations=4, tensor_format="csf"
            ),
        )
        ooc = out_of_core_hooi(
            handle, [3, 3, 3], init="random", seed=0, max_iterations=4
        )
        assert abs(ooc.fit - in_memory.fit) < 1e-10
        for a, b in zip(
            ooc.decomposition.factors, in_memory.decomposition.factors
        ):
            np.testing.assert_allclose(a, b, atol=1e-10)
        np.testing.assert_allclose(
            ooc.decomposition.core, in_memory.decomposition.core, atol=1e-10
        )
        # The acceptance accounting: what the in-memory pipeline would hold
        # dwarfs what the memory-mapped run keeps on the heap.
        footprint = handle.in_memory_footprint()
        assert footprint > 0
        assert handle.resident_bytes() < footprint // 4

    def test_shared_tree_policy(self, tmp_path):
        tensor, _truth = planted_lowrank_tensor(
            (10, 8, 6), (2, 2, 2), 300, noise=0.0, seed=11
        )
        handle = build_out_of_core(tensor, tmp_path / "ooc", trees="shared")
        result = out_of_core_hooi(
            handle, [2, 2, 2], init="random", seed=0, max_iterations=2
        )
        assert np.isfinite(result.fit)

    def test_end_to_end_from_tns_under_rss_cap(self, tmp_path):
        """The acceptance shape: chunked reader → mmap CSF → decomposition,
        heap-resident tree bytes under a cap the in-memory footprint breaks."""
        tensor, _truth = planted_lowrank_tensor(
            (16, 13, 11), (2, 2, 2), 900, noise=0.02, seed=12
        )
        path = tmp_path / "t.tns"
        write_tns(tensor, path)
        handle = build_out_of_core(path, tmp_path / "ooc", chunk_nnz=128)
        assert handle.shape == tensor.shape
        assert handle.nnz == tensor.nnz
        assert abs(handle.norm() - tensor.norm()) < 1e-12
        in_memory = hooi(
            tensor,
            [2, 2, 2],
            HOOIOptions(
                init="random", seed=0, max_iterations=3, tensor_format="csf"
            ),
        )
        ooc = out_of_core_hooi(
            handle, [2, 2, 2], init="random", seed=0, max_iterations=3
        )
        assert abs(ooc.fit - in_memory.fit) < 1e-10
        rss_cap = handle.in_memory_footprint() // 4  # the configured cap
        assert handle.in_memory_footprint() > rss_cap
        assert handle.resident_bytes() < rss_cap

    def test_error_paths(self, tmp_path):
        tensor, _truth = planted_lowrank_tensor(
            (8, 6, 5), (2, 2, 2), 120, noise=0.0, seed=13
        )
        with pytest.raises(FileNotFoundError, match="build_out_of_core"):
            out_of_core_hooi(tmp_path / "missing", [2, 2, 2])
        handle = build_out_of_core(tensor, tmp_path / "ooc")
        with pytest.raises(ValueError, match="hosvd"):
            out_of_core_hooi(handle, [2, 2, 2], init="hosvd")
        with pytest.raises(ValueError, match="sequential"):
            out_of_core_hooi(handle, [2, 2, 2], execution="thread")
        with pytest.raises(ValueError, match="dtype"):
            out_of_core_hooi(handle, [2, 2, 2], dtype="float32")
        with pytest.raises(ValueError, match="csf"):
            out_of_core_hooi(handle, [2, 2, 2], tensor_format="coo")


class TestChunkedTns:
    def _write(self, tmp_path, lines):
        path = tmp_path / "t.tns"
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def test_chunked_read_matches_eager(self, tmp_path):
        rng = np.random.default_rng(14)
        idx = np.column_stack([rng.integers(0, 9, 100) for _ in range(3)])
        vals = rng.standard_normal(100)
        tensor = SparseTensor(idx, vals, (9, 9, 9), sum_duplicates=True)
        path = tmp_path / "t.tns"
        write_tns(tensor, path)
        for chunk_nnz in (1, 7, 64, 10_000):
            back = read_tns(path, chunk_nnz=chunk_nnz)
            assert back.shape == tensor.shape
            assert np.array_equal(back.indices, tensor.indices)
            assert np.array_equal(back.values, tensor.values)

    def test_iter_tns_chunks_boundaries(self, tmp_path):
        path = self._write(
            tmp_path, [f"1 {i + 1} {float(i)}" for i in range(10)]
        )
        chunks = list(iter_tns_chunks(path, chunk_nnz=4))
        assert [len(v) for _i, v in chunks] == [4, 4, 2]
        all_idx = np.vstack([i for i, _v in chunks])
        assert np.array_equal(all_idx[:, 1], np.arange(10))

    def test_malformed_line_error(self, tmp_path):
        path = self._write(tmp_path, ["1 2 3.0", "oops"])
        with pytest.raises(ValueError, match="malformed"):
            read_tns(path)

    def test_cross_chunk_arity_error(self, tmp_path):
        path = self._write(tmp_path, ["1 2 3.0", "1 2 3 4.0"])
        with pytest.raises(ValueError, match="indices per line"):
            read_tns(path, chunk_nnz=1)

    def test_stream_from_tns(self, tmp_path):
        rng = np.random.default_rng(15)
        idx = np.column_stack([rng.integers(0, 8, 60) for _ in range(3)])
        vals = rng.standard_normal(60)
        tensor = SparseTensor(idx, vals, (8, 8, 8), sum_duplicates=True)
        path = tmp_path / "t.tns"
        write_tns(tensor, path)
        stream = StreamingTensor.from_tns(path, chunk_nnz=17)
        merged = stream.tensor
        assert merged.shape == tensor.shape
        assert np.array_equal(merged.indices, tensor.indices)
        assert np.array_equal(merged.values, tensor.values)


class TestServingDelta:
    def test_submit_delta_warm_starts_and_caches(self):
        from repro.serving import DecompositionService

        tensor, _truth = planted_lowrank_tensor(
            (12, 10, 8), (2, 2, 2), 500, noise=0.05, seed=16
        )
        rng = np.random.default_rng(17)
        bidx = np.column_stack(
            [rng.integers(0, s, 40) for s in tensor.shape]
        )
        batch = DeltaBatch(bidx, rng.standard_normal(40))

        async def main():
            async with DecompositionService(
                num_workers=1, warmup=True
            ) as svc:
                base = await svc.submit(
                    tensor, (2, 2, 2), max_iterations=4, seed=0
                )
                await base.result()
                delta = await svc.submit_delta(base, batch)
                first = await delta.result()
                again = await svc.submit_delta(base, batch)
                second = await again.result()
                return (
                    first,
                    second,
                    delta.cached,
                    again.cached,
                    svc.metrics(),
                )

        first, second, first_cached, again_cached, metrics = asyncio.run(
            main()
        )
        assert not first_cached
        assert again_cached  # same (base fp, batch fp) ⇒ same cache line
        assert second.fit == first.fit
        assert metrics["jobs"]["warm_started"] == 1

    def test_submit_delta_unknown_base(self):
        from repro.serving import DecompositionService

        async def main():
            async with DecompositionService(
                num_workers=1, warmup=False
            ) as svc:
                with pytest.raises(ValueError, match="unknown base job"):
                    await svc.submit_delta(
                        "job-999", DeltaBatch(np.array([[0, 0]]), [1.0])
                    )

        asyncio.run(main())
