"""Unit tests for the SparseTensor container."""

import numpy as np
import pytest

from repro.core import SparseTensor


def make_tensor():
    indices = np.array([[0, 1, 2], [1, 0, 0], [0, 1, 2], [2, 2, 1]])
    values = np.array([1.0, 2.0, 3.0, -1.0])
    return SparseTensor(indices, values, (3, 3, 3))


class TestConstruction:
    def test_basic_properties(self):
        t = make_tensor()
        assert t.shape == (3, 3, 3)
        assert t.order == 3
        assert t.nnz == 4
        assert t.size == 27
        assert 0 < t.density < 1

    def test_sum_duplicates(self):
        indices = np.array([[0, 1, 2], [1, 0, 0], [0, 1, 2], [2, 2, 1]])
        values = np.array([1.0, 2.0, 3.0, -1.0])
        t = SparseTensor(indices, values, (3, 3, 3), sum_duplicates=True)
        assert t.nnz == 3
        dense = t.to_dense()
        assert dense[0, 1, 2] == 4.0

    def test_out_of_range_index_raises(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([[3, 0]]), np.array([1.0]), (3, 3))

    def test_negative_index_raises(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([[-1, 0]]), np.array([1.0]), (3, 3))

    def test_value_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([[0, 0]]), np.array([1.0, 2.0]), (3, 3))

    def test_column_count_mismatch_raises(self):
        with pytest.raises(ValueError):
            SparseTensor(np.array([[0, 0]]), np.array([1.0]), (3, 3, 3))

    def test_empty_tensor(self):
        t = SparseTensor.empty((4, 5))
        assert t.nnz == 0
        assert t.norm() == 0.0
        assert np.allclose(t.to_dense(), 0.0)

    def test_from_dense_roundtrip(self, rng):
        dense = rng.standard_normal((4, 5, 3))
        dense[np.abs(dense) < 0.7] = 0.0
        t = SparseTensor.from_dense(dense)
        assert np.allclose(t.to_dense(), dense)

    def test_from_dense_tolerance(self):
        dense = np.array([[0.1, 2.0], [0.0, -0.05]])
        t = SparseTensor.from_dense(dense, tol=0.2)
        assert t.nnz == 1

    def test_copy_is_independent(self):
        t = make_tensor()
        c = t.copy()
        c.values[0] = 99.0
        assert t.values[0] != 99.0


class TestOperations:
    def test_norm_matches_dense(self):
        t = make_tensor().deduplicate()
        assert np.isclose(t.norm(), np.linalg.norm(t.to_dense()))

    def test_scale(self):
        t = make_tensor()
        assert np.allclose(t.scale(2.0).values, 2.0 * t.values)

    def test_drop_zeros(self):
        t = SparseTensor(np.array([[0, 0], [1, 1]]), np.array([0.0, 2.0]), (2, 2))
        assert t.drop_zeros().nnz == 1

    def test_permute_modes(self):
        t = make_tensor().deduplicate()
        p = t.permute_modes([2, 0, 1])
        assert p.shape == (3, 3, 3)
        assert np.allclose(p.to_dense(), np.transpose(t.to_dense(), (2, 0, 1)))

    def test_permute_invalid(self):
        with pytest.raises(ValueError):
            make_tensor().permute_modes([0, 1])

    def test_mode_slice(self):
        t = make_tensor().deduplicate()
        s = t.mode_slice(0, 0)
        assert s.shape == (3, 3)
        assert np.allclose(s.to_dense(), t.to_dense()[0])

    def test_mode_slice_out_of_range(self):
        with pytest.raises(ValueError):
            make_tensor().mode_slice(0, 5)

    def test_select_nonzeros(self):
        t = make_tensor()
        sub = t.select_nonzeros(np.array([0, 2]))
        assert sub.nnz == 2
        assert sub.shape == t.shape

    def test_mode_counts(self):
        t = make_tensor()
        counts = t.mode_counts(0)
        assert counts.sum() == t.nnz
        assert counts.shape == (3,)

    def test_nonempty_rows(self):
        t = make_tensor()
        assert set(t.nonempty_rows(0)) == {0, 1, 2}

    def test_linear_indices_unique_after_dedup(self):
        t = make_tensor().deduplicate()
        keys = t.linear_indices()
        assert len(np.unique(keys)) == t.nnz


class TestMatricize:
    def test_matricization_matches_dense(self, small_tensor_3d):
        from repro.core import unfold

        dense = small_tensor_3d.to_dense()
        for mode in range(3):
            sparse_mat = small_tensor_3d.matricize(mode).toarray()
            assert np.allclose(sparse_mat, unfold(dense, mode))

    def test_matricization_4d(self, small_tensor_4d):
        from repro.core import unfold

        dense = small_tensor_4d.to_dense()
        for mode in range(4):
            assert np.allclose(
                small_tensor_4d.matricize(mode).toarray(), unfold(dense, mode)
            )

    def test_matricize_shape(self, small_tensor_3d):
        mat = small_tensor_3d.matricize(1)
        expected_cols = small_tensor_3d.shape[0] * small_tensor_3d.shape[2]
        assert mat.shape == (small_tensor_3d.shape[1], expected_cols)


class TestAllclose:
    def test_identical(self):
        t = make_tensor()
        assert t.allclose(t.copy())

    def test_different_values(self):
        t = make_tensor().deduplicate()
        other = t.copy()
        other.values[0] += 1.0
        assert not t.allclose(other)

    def test_different_shape(self):
        t = make_tensor()
        other = SparseTensor(t.indices, t.values, (3, 3, 4))
        assert not t.allclose(other)

    def test_extra_explicit_zero_ok(self):
        t = SparseTensor(np.array([[0, 0]]), np.array([1.0]), (2, 2))
        other = SparseTensor(
            np.array([[0, 0], [1, 1]]), np.array([1.0, 0.0]), (2, 2)
        )
        assert t.allclose(other)
