"""Unit tests for repro.util.validation."""

import numpy as np
import pytest

from repro.util.validation import (
    check_axis,
    check_dtype_real,
    check_positive_int,
    check_rank_vector,
    check_same_order,
    check_shape_vector,
)


class TestCheckPositiveInt:
    def test_accepts_python_int(self):
        assert check_positive_int(3, "x") == 3

    def test_accepts_numpy_int(self):
        assert check_positive_int(np.int64(5), "x") == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="positive"):
            check_positive_int(0, "x")

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_positive_int(-2, "x")

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(2.5, "x")

    def test_error_mentions_name(self):
        with pytest.raises(ValueError, match="my_param"):
            check_positive_int(-1, "my_param")


class TestCheckAxis:
    def test_valid_axis(self):
        assert check_axis(1, 3) == 1

    def test_negative_axis_wraps(self):
        assert check_axis(-1, 3) == 2

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            check_axis(3, 3)

    def test_too_negative(self):
        with pytest.raises(ValueError):
            check_axis(-4, 3)

    def test_non_integer(self):
        with pytest.raises(TypeError):
            check_axis(1.0, 3)


class TestCheckShapeVector:
    def test_tuple_roundtrip(self):
        assert check_shape_vector((3, 4, 5)) == (3, 4, 5)

    def test_list_converted(self):
        assert check_shape_vector([2, 2]) == (2, 2)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            check_shape_vector(())

    def test_rejects_zero_dim(self):
        with pytest.raises(ValueError):
            check_shape_vector((3, 0, 5))

    def test_rejects_non_numeric(self):
        with pytest.raises((TypeError, ValueError)):
            check_shape_vector(("a", "b"))


class TestCheckRankVector:
    def test_scalar_broadcast(self):
        assert check_rank_vector(4, (10, 20, 30)) == (4, 4, 4)

    def test_vector_passthrough(self):
        assert check_rank_vector((2, 3, 4), (10, 20, 30)) == (2, 3, 4)

    def test_clipped_to_mode_size(self):
        assert check_rank_vector(50, (10, 20, 30)) == (10, 20, 30)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            check_rank_vector((2, 3), (10, 20, 30))

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            check_rank_vector((2, 0, 4), (10, 20, 30))


class TestCheckSameOrder:
    def test_matching_length(self):
        check_same_order(3, [1, 2, 3], "items")

    def test_mismatch_raises(self):
        with pytest.raises(ValueError, match="items"):
            check_same_order(3, [1, 2], "items")


class TestCheckDtypeReal:
    def test_float_passthrough(self):
        arr = np.array([1.0, 2.0])
        assert check_dtype_real(arr, "a").dtype == np.float64

    def test_int_converted(self):
        assert check_dtype_real(np.array([1, 2]), "a").dtype == np.float64

    def test_complex_rejected(self):
        with pytest.raises(TypeError):
            check_dtype_real(np.array([1j]), "a")
