"""Tests for the shared-memory parallel layer (parallel_for, parallel TTMc, Alg. 3)."""

import threading

import numpy as np
import pytest

from repro.core import HOOIOptions, hooi, symbolic_ttmc, ttmc_matricized
from repro.parallel import (
    BGQ_NODE,
    NodeModel,
    ParallelConfig,
    PhaseWork,
    core_phase_work,
    kron_width,
    make_chunks,
    parallel_for,
    parallel_ttmc_matricized,
    predict_iteration_time,
    shared_hooi,
    trsvd_phase_work,
    ttmc_phase_work,
    ttmc_row_block,
)


class TestChunks:
    def test_static_covers_all_items(self):
        sched = make_chunks(100, 4, schedule="static")
        covered = sorted(i for start, stop in sched for i in range(start, stop))
        assert covered == list(range(100))

    def test_dynamic_chunk_size_respected(self):
        sched = make_chunks(100, 4, schedule="dynamic", chunk_size=10)
        assert all(stop - start <= 10 for start, stop in sched)
        assert len(sched) == 10

    def test_guided_decreasing_sizes(self):
        sched = make_chunks(1000, 4, schedule="guided")
        sizes = [stop - start for start, stop in sched]
        assert sizes[0] >= sizes[-1]
        assert sum(sizes) == 1000

    def test_empty(self):
        assert len(make_chunks(0, 4)) == 0

    def test_unknown_schedule(self):
        with pytest.raises(ValueError):
            make_chunks(10, 2, schedule="bogus")

    def test_config_validation(self):
        with pytest.raises(ValueError):
            ParallelConfig(num_threads=0)
        with pytest.raises(ValueError):
            ParallelConfig(schedule="???")
        with pytest.raises(ValueError):
            ParallelConfig(chunk_size=0)


class TestParallelFor:
    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
    @pytest.mark.parametrize("threads", [1, 2, 4])
    def test_every_item_processed_once(self, schedule, threads):
        seen = np.zeros(500, dtype=np.int64)
        lock = threading.Lock()

        def body(start, stop):
            with lock:
                seen[start:stop] += 1

        parallel_for(body, 500, ParallelConfig(num_threads=threads, schedule=schedule))
        assert np.all(seen == 1)

    def test_exception_propagates(self):
        def body(start, stop):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            parallel_for(body, 10, ParallelConfig(num_threads=2))

    def test_zero_items_is_noop(self):
        parallel_for(lambda a, b: pytest.fail("should not run"), 0, ParallelConfig())


class TestParallelTTMc:
    @pytest.mark.parametrize("threads", [1, 2, 4])
    @pytest.mark.parametrize("schedule", ["static", "dynamic"])
    def test_matches_sequential(self, medium_tensor_3d, threads, schedule, rng):
        factors = [
            np.linalg.qr(rng.standard_normal((s, 4)))[0]
            for s in medium_tensor_3d.shape
        ]
        for mode in range(3):
            expected = ttmc_matricized(medium_tensor_3d, factors, mode)
            actual = parallel_ttmc_matricized(
                medium_tensor_3d, factors, mode,
                config=ParallelConfig(num_threads=threads, schedule=schedule),
            )
            assert np.allclose(actual, expected)

    def test_row_block_matches_full(self, small_tensor_3d, factors_3d):
        mode = 1
        sym = symbolic_ttmc(small_tensor_3d, mode)
        full = ttmc_matricized(small_tensor_3d, factors_3d, mode, symbolic=sym)
        positions = np.arange(sym.num_rows)[::3]
        block = ttmc_row_block(small_tensor_3d, factors_3d, mode, sym, positions)
        assert np.allclose(block, full[sym.rows[positions]])

    def test_row_block_empty_positions(self, small_tensor_3d, factors_3d):
        sym = symbolic_ttmc(small_tensor_3d, 0)
        block = ttmc_row_block(
            small_tensor_3d, factors_3d, 0, sym, np.empty(0, dtype=np.int64)
        )
        assert block.shape[0] == 0

    def test_out_buffer(self, small_tensor_3d, factors_3d):
        width = factors_3d[1].shape[1] * factors_3d[2].shape[1]
        out = np.zeros((small_tensor_3d.shape[0], width))
        result = parallel_ttmc_matricized(
            small_tensor_3d, factors_3d, 0, out=out,
            config=ParallelConfig(num_threads=2),
        )
        assert result is out


class TestSharedHOOI:
    def test_matches_sequential_fit(self, medium_tensor_3d):
        opts = HOOIOptions(max_iterations=3, init="hosvd", seed=0)
        seq = hooi(medium_tensor_3d, 5, opts)
        par = shared_hooi(medium_tensor_3d, 5, opts, config=ParallelConfig(num_threads=3))
        assert np.allclose(seq.fit_history, par.result.fit_history, atol=1e-9)

    def test_report_contains_timings(self, small_tensor_3d):
        report = shared_hooi(small_tensor_3d, 3,
                             HOOIOptions(max_iterations=2),
                             config=ParallelConfig(num_threads=2))
        assert report.measured_seconds_per_iteration > 0
        assert report.modelled_seconds_per_iteration > 0
        assert report.num_threads == 2


class TestNodeModel:
    def test_more_threads_never_slower(self):
        work = PhaseWork(flops=1e9, random_accesses=1e6, streamed_bytes=1e8)
        times = [BGQ_NODE.phase_time(work, t) for t in (1, 2, 4, 8, 16, 32)]
        assert all(b <= a + 1e-12 for a, b in zip(times, times[1:]))

    def test_latency_scales_past_core_count(self):
        model = NodeModel(cores=4, smt=2)
        work = PhaseWork(random_accesses=1e6)
        assert model.phase_time(work, 8) < model.phase_time(work, 4)
        # but not past cores * smt
        assert np.isclose(model.phase_time(work, 8), model.phase_time(work, 16))

    def test_bandwidth_saturates(self):
        model = NodeModel(cores=16)
        work = PhaseWork(streamed_bytes=1e9)
        assert np.isclose(model.phase_time(work, 8), model.phase_time(work, 32))

    def test_breakdown_keys(self):
        parts = BGQ_NODE.breakdown(PhaseWork(flops=1.0), 2)
        assert set(parts) == {"compute", "latency", "bandwidth"}

    def test_phasework_add_and_scale(self):
        a = PhaseWork(flops=1, random_accesses=2, streamed_bytes=3)
        b = a + a
        assert b.flops == 2 and b.streamed_bytes == 6
        assert a.scaled(2.0).random_accesses == 4


class TestWorkCounts:
    def test_kron_width(self):
        assert kron_width((10, 10, 10), 0) == 100
        assert kron_width((5, 5, 5, 5), 3) == 125

    def test_ttmc_work_scales_with_nnz(self):
        a = ttmc_phase_work(100, 3, (10, 10, 10), 0)
        b = ttmc_phase_work(200, 3, (10, 10, 10), 0)
        assert np.isclose(b.flops, 2 * a.flops)
        assert np.isclose(b.random_accesses, 2 * a.random_accesses)

    def test_trsvd_work_scales_with_rows(self):
        a = trsvd_phase_work(100, (10, 10, 10), 0)
        b = trsvd_phase_work(300, (10, 10, 10), 0)
        assert np.isclose(b.flops, 3 * a.flops)

    def test_core_work_positive(self):
        work = core_phase_work(1000, (10, 10, 10))
        assert work.flops > 0 and work.streamed_bytes > 0

    def test_predicted_time_decreases_with_threads(self, medium_tensor_3d):
        t1 = predict_iteration_time(medium_tensor_3d, 5, 1)
        t8 = predict_iteration_time(medium_tensor_3d, 5, 8)
        assert t8 < t1
