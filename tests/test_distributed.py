"""Tests for the distributed HOOI: plans, distributed TRSVD and Algorithm 4."""

import numpy as np
import pytest

from repro.core import (
    HOOIOptions,
    hooi,
    lanczos_svd,
    ttmc_matricized,
)
from repro.data import power_law_sparse_tensor
from repro.distributed import (
    DistributedTTMcMatrix,
    build_plans,
    collect_partition_statistics,
    distributed_hooi,
    distributed_lanczos_svd,
    estimate_iteration_time,
)
from repro.parallel.shared_ttmc import ttmc_row_block
from repro.partition import make_partition
from repro.simmpi import run_spmd
from repro.util.linalg import random_orthonormal


@pytest.fixture(scope="module")
def tensor():
    return power_law_sparse_tensor((40, 30, 50), 2500, exponents=0.6, seed=9)


@pytest.fixture(scope="module")
def ranks():
    return (6, 5, 4)


ALL_STRATEGIES = ["fine-hp", "fine-rd", "coarse-hp", "coarse-bl"]


class TestPlans:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_owned_rows_partition_every_mode(self, tensor, ranks, strategy):
        partition = make_partition(tensor, 4, strategy, seed=0)
        global_plan, plans = build_plans(tensor, partition, ranks)
        for mode in range(tensor.order):
            all_owned = np.concatenate([p.modes[mode].owned_rows for p in plans])
            assert sorted(all_owned.tolist()) == list(range(tensor.shape[mode]))

    def test_fine_compute_rows_equal_local_rows(self, tensor, ranks):
        partition = make_partition(tensor, 4, "fine-rd", seed=0)
        _, plans = build_plans(tensor, partition, ranks)
        for plan in plans:
            for mp in plan.modes:
                assert np.array_equal(mp.compute_rows, mp.local_rows)

    def test_coarse_compute_rows_are_owned(self, tensor, ranks):
        partition = make_partition(tensor, 4, "coarse-bl")
        _, plans = build_plans(tensor, partition, ranks)
        for plan in plans:
            for mp in plan.modes:
                assert np.array_equal(mp.compute_rows, mp.owned_rows)
                # coarse grain never folds partial results
                assert not mp.fold.send and not mp.fold.receive

    def test_factor_exchange_symmetry(self, tensor, ranks):
        partition = make_partition(tensor, 4, "fine-rd", seed=1)
        _, plans = build_plans(tensor, partition, ranks)
        for mode in range(tensor.order):
            for receiver in range(4):
                recv_plan = plans[receiver].modes[mode].factor_exchange
                for owner, rows in recv_plan.receive.items():
                    send_plan = plans[owner].modes[mode].factor_exchange
                    assert receiver in send_plan.send
                    assert np.array_equal(np.sort(send_plan.send[receiver]),
                                          np.sort(rows))

    def test_received_rows_are_owned_by_sender(self, tensor, ranks):
        partition = make_partition(tensor, 4, "fine-hp", seed=0)
        _, plans = build_plans(tensor, partition, ranks)
        for mode in range(tensor.order):
            for plan in plans:
                for owner, rows in plan.modes[mode].factor_exchange.receive.items():
                    assert np.all(partition.row_owner[mode][rows] == owner)

    def test_needed_rows_covered(self, tensor, ranks):
        """Every row a rank's local tensor touches is either owned or received."""
        partition = make_partition(tensor, 4, "coarse-hp", seed=0)
        _, plans = build_plans(tensor, partition, ranks)
        for plan in plans:
            for mode in range(tensor.order):
                mp = plan.modes[mode]
                available = set(mp.owned_rows.tolist())
                for rows in mp.factor_exchange.receive.values():
                    available.update(rows.tolist())
                assert set(mp.local_rows.tolist()) <= available

    def test_global_plan_metadata(self, tensor, ranks):
        partition = make_partition(tensor, 4, "fine-rd", seed=0)
        global_plan, plans = build_plans(tensor, partition, ranks)
        assert global_plan.num_ranks == 4
        assert np.isclose(global_plan.norm_x, tensor.norm())
        assert len(plans) == 4
        assert all(p.order == tensor.order for p in plans)


class TestDistributedTRSVD:
    @pytest.mark.parametrize("strategy", ["fine-hp", "coarse-bl"])
    def test_matches_sequential_lanczos(self, tensor, ranks, strategy):
        """Distributed operator + distributed Lanczos == sequential Lanczos."""
        partition = make_partition(tensor, 3, strategy, seed=0)
        _, plans = build_plans(tensor, partition, ranks)
        mode = 1
        factors = [random_orthonormal(s, r, seed=50 + i)
                   for i, (s, r) in enumerate(zip(tensor.shape, ranks))]
        y_full = ttmc_matricized(tensor, factors, mode)
        nonempty = tensor.nonempty_rows(mode)
        reference = lanczos_svd(y_full[nonempty], ranks[mode], seed=0)

        def program(comm):
            plan = plans[comm.rank]
            mp = plan.modes[mode]
            sym_rows = plan.symbolic[mode].rows
            positions = np.flatnonzero(np.isin(sym_rows, mp.compute_rows))
            block = ttmc_row_block(plan.local_tensor, factors, mode,
                                   plan.symbolic[mode], positions)
            op = DistributedTTMcMatrix(comm, mp, sym_rows[positions], block,
                                       charge_time=False)
            res = distributed_lanczos_svd(op, ranks[mode], seed=0)
            return mp.owned_nonempty_rows, res.left_owned, res.singular_values

        spmd = run_spmd(program, 3)
        sing = spmd.values[0][2]
        assert np.allclose(sing, reference.singular_values, rtol=1e-6)
        # Assemble the distributed left vectors and compare subspaces.
        assembled = np.zeros((tensor.shape[mode], ranks[mode]))
        for rows, left, _ in spmd.values:
            assembled[rows] = left
        ours = assembled[nonempty] @ assembled[nonempty].T
        ref = reference.left @ reference.left.T
        assert np.allclose(ours, ref, atol=1e-5)

    def test_matvec_rmatvec_match_dense(self, tensor, ranks):
        partition = make_partition(tensor, 3, "fine-rd", seed=2)
        _, plans = build_plans(tensor, partition, ranks)
        mode = 2
        factors = [random_orthonormal(s, r, seed=60 + i)
                   for i, (s, r) in enumerate(zip(tensor.shape, ranks))]
        y_full = ttmc_matricized(tensor, factors, mode)
        width = y_full.shape[1]
        rng = np.random.default_rng(0)
        v = rng.standard_normal(width)

        def program(comm):
            plan = plans[comm.rank]
            mp = plan.modes[mode]
            sym_rows = plan.symbolic[mode].rows
            positions = np.flatnonzero(np.isin(sym_rows, mp.compute_rows))
            block = ttmc_row_block(plan.local_tensor, factors, mode,
                                   plan.symbolic[mode], positions)
            op = DistributedTTMcMatrix(comm, mp, sym_rows[positions], block,
                                       charge_time=False)
            y_owned = op.matvec(v)
            x = op.rmatvec(y_owned)
            return mp.owned_nonempty_rows, y_owned, x

        spmd = run_spmd(program, 3)
        y_assembled = np.zeros(tensor.shape[mode])
        for rows, y_owned, _ in spmd.values:
            y_assembled[rows] = y_owned
        assert np.allclose(y_assembled, y_full @ v, atol=1e-9)
        # rmatvec of the folded y must equal Yᵀ (Y v).
        expected_x = y_full.T @ (y_full @ v)
        for _, _, x in spmd.values:
            assert np.allclose(x, expected_x, atol=1e-8)


class TestDistributedHOOI:
    @pytest.mark.parametrize("strategy", ALL_STRATEGIES)
    def test_matches_sequential(self, tensor, ranks, strategy):
        options = HOOIOptions(max_iterations=3, init="random", seed=0)
        sequential = hooi(tensor, ranks, options)
        partition = make_partition(tensor, 4, strategy, seed=1)
        distributed = distributed_hooi(tensor, ranks, partition, options)
        assert np.allclose(distributed.fit_history, sequential.fit_history, atol=1e-6)

    def test_single_rank_matches_sequential(self, tensor, ranks):
        options = HOOIOptions(max_iterations=2, init="random", seed=0)
        sequential = hooi(tensor, ranks, options)
        partition = make_partition(tensor, 1, "coarse-bl")
        distributed = distributed_hooi(tensor, ranks, partition, options)
        assert np.allclose(distributed.fit_history, sequential.fit_history, atol=1e-8)

    def test_assembled_decomposition_reconstructs(self, tensor, ranks):
        options = HOOIOptions(max_iterations=3, init="random", seed=0)
        partition = make_partition(tensor, 4, "fine-hp", seed=0)
        result = distributed_hooi(tensor, ranks, partition, options)
        from repro.core import tucker_fit

        fit = tucker_fit(tensor, result.decomposition, assume_orthonormal=False)
        assert np.isclose(fit, result.fit, atol=1e-6)

    def test_statistics_populated(self, tensor, ranks):
        partition = make_partition(tensor, 4, "fine-rd", seed=0)
        result = distributed_hooi(
            tensor, ranks, partition, HOOIOptions(max_iterations=2, seed=0)
        )
        assert result.num_ranks == 4
        assert result.simulated_time_per_iteration > 0
        assert result.wall_time_per_iteration > 0
        assert result.comm_volume_elements().shape == (4,)
        assert result.comm_volume_elements().max() > 0
        fractions = result.phase_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-9
        for rr in result.rank_results:
            assert len(rr.ttmc_work) == tensor.order
            assert len(rr.trsvd_rows) == tensor.order

    def test_fine_hp_less_comm_than_fine_rd(self, tensor, ranks):
        options = HOOIOptions(max_iterations=2, init="random", seed=0)
        hp = distributed_hooi(tensor, ranks,
                              make_partition(tensor, 4, "fine-hp", seed=0), options)
        rd = distributed_hooi(tensor, ranks,
                              make_partition(tensor, 4, "fine-rd", seed=0), options)
        assert hp.comm_volume_elements().mean() < rd.comm_volume_elements().mean()


HYBRID_CONFIGS = {
    "thread-per-mode": dict(execution="thread", num_workers=3),
    "thread-dimtree": dict(execution="thread", num_workers=3,
                           ttmc_strategy="dimtree"),
}


class TestHybridExecution:
    """The paper's hybrid ranks: per-rank threads and/or rank-local dimtrees.

    Execution strategy only changes local compute, so a hybrid run must
    match the sequential-rank run of the same TTMc strategy to 1e-10 with
    *byte-identical* communication statistics (volumes and message counts).
    """

    @pytest.mark.parametrize("partition_strategy", ["coarse-bl", "fine-hp"])
    @pytest.mark.parametrize("config", list(HYBRID_CONFIGS),
                             ids=list(HYBRID_CONFIGS))
    def test_matches_sequential_rank_oracle(
        self, tensor, ranks, partition_strategy, config
    ):
        hybrid = HYBRID_CONFIGS[config]
        partition = make_partition(tensor, 4, partition_strategy, seed=1)
        base = dict(max_iterations=3, init="random", seed=0)
        oracle = distributed_hooi(
            tensor, ranks, partition,
            HOOIOptions(
                **base, ttmc_strategy=hybrid.get("ttmc_strategy", "per-mode")
            ),
        )
        run = distributed_hooi(
            tensor, ranks, partition, HOOIOptions(**base, **hybrid)
        )
        assert np.allclose(run.fit_history, oracle.fit_history, atol=1e-10)
        for ours, ref in zip(
            run.decomposition.factors, oracle.decomposition.factors
        ):
            assert np.allclose(ours, ref, atol=1e-10)
        assert np.allclose(
            run.decomposition.core, oracle.decomposition.core, atol=1e-10
        )
        for rr, ref_rr in zip(run.rank_results, oracle.rank_results):
            assert rr.comm_stats == ref_rr.comm_stats
            assert rr.per_mode_comm_bytes == ref_rr.per_mode_comm_bytes

    @pytest.mark.parametrize("partition_strategy", ["coarse-bl", "fine-hp"])
    def test_dimtree_strategy_matches_per_mode(
        self, tensor, ranks, partition_strategy
    ):
        """Rank-local dimension trees reproduce per-mode fits and traffic."""
        partition = make_partition(tensor, 4, partition_strategy, seed=1)
        base = dict(max_iterations=3, init="random", seed=0)
        per_mode = distributed_hooi(
            tensor, ranks, partition, HOOIOptions(**base)
        )
        dimtree = distributed_hooi(
            tensor, ranks, partition,
            HOOIOptions(**base, ttmc_strategy="dimtree"),
        )
        assert np.allclose(
            dimtree.fit_history, per_mode.fit_history, atol=1e-10
        )
        for rr, ref_rr in zip(dimtree.rank_results, per_mode.rank_results):
            assert rr.comm_stats == ref_rr.comm_stats

    def test_hybrid_simulated_time_scales_with_threads(self, tensor, ranks):
        """Thread-level work items feed the per-thread roofline model."""
        partition = make_partition(tensor, 4, "fine-hp", seed=1)
        times = {}
        for threads in (1, 8):
            run = distributed_hooi(
                tensor, ranks, partition,
                HOOIOptions(max_iterations=2, init="random", seed=0,
                            execution="thread", num_workers=threads),
            )
            times[threads] = run.simulated_time_per_iteration
        assert times[8] < times[1]

    def test_empty_rank_runs_dimtree(self):
        """A rank with no local nonzeros still serves (zero) rows."""
        from repro.core import SparseTensor

        rng = np.random.default_rng(0)
        # All nonzeros in the low corner: the block partition leaves the
        # last rank(s) without any local nonzeros.
        indices = np.column_stack([rng.integers(0, 4, 120) for _ in range(3)])
        tensor = SparseTensor(
            indices, rng.standard_normal(120), (12, 10, 8),
            sum_duplicates=True,
        )
        partition = make_partition(tensor, 3, "coarse-bl")
        base = dict(max_iterations=2, init="random", seed=0)
        per_mode = distributed_hooi(tensor, 2, partition, HOOIOptions(**base))
        for config in HYBRID_CONFIGS.values():
            hybrid = distributed_hooi(
                tensor, 2, partition, HOOIOptions(**base, **config)
            )
            assert np.allclose(
                hybrid.fit_history, per_mode.fit_history, atol=1e-10
            )


class TestDistributedCallbackAndFit:
    def test_callback_fires_once_per_tracked_iteration(self, tensor, ranks):
        partition = make_partition(tensor, 3, "fine-rd", seed=0)
        calls = []
        result = distributed_hooi(
            tensor, ranks, partition,
            HOOIOptions(max_iterations=3, init="random", seed=0),
            callback=lambda it, fit: calls.append((it, fit)),
        )
        assert [it for it, _ in calls] == list(range(result.iterations))
        assert np.allclose([f for _, f in calls], result.fit_history)

    def test_callback_with_track_fit_disabled(self, tensor, ranks):
        """Regression: track_fit=False never fires the callback, yet the
        result still carries the single final fit (never silently NaN)."""
        partition = make_partition(tensor, 3, "fine-rd", seed=0)
        calls = []
        result = distributed_hooi(
            tensor, ranks, partition,
            HOOIOptions(max_iterations=2, init="random", seed=0,
                        track_fit=False),
            callback=lambda it, fit: calls.append((it, fit)),
        )
        assert calls == []
        assert len(result.fit_history) == 1
        assert np.isfinite(result.fit)
        assert result.iterations == 2

    def test_fit_raises_on_empty_history(self):
        from repro.core.tucker import TuckerTensor
        from repro.distributed.dist_hooi import DistributedHOOIResult

        broken = DistributedHOOIResult(
            decomposition=TuckerTensor(
                core=np.zeros((1, 1, 1)), factors=[np.zeros((2, 1))] * 3
            ),
            fit_history=[],
            iterations=0,
            converged=False,
            rank_results=[],
            strategy="fine-rd",
            num_ranks=0,
            simulated_time_per_iteration=0.0,
            wall_time_per_iteration=0.0,
        )
        with pytest.raises(ValueError, match="fit_history is empty"):
            broken.fit


class TestPerformanceEstimator:
    def test_statistics_match_partition_counts(self, tensor, ranks):
        partition = make_partition(tensor, 4, "fine-rd", seed=3)
        stats = collect_partition_statistics(tensor, partition, ranks)
        for mode in range(tensor.order):
            expected = partition.ttmc_nonzero_counts(tensor, mode)
            assert np.array_equal(stats.modes[mode].ttmc_work, expected)
            expected_rows = partition.trsvd_row_counts(tensor, mode)
            assert np.array_equal(stats.modes[mode].trsvd_rows, expected_rows)

    def test_estimate_decreases_with_more_ranks(self, tensor, ranks):
        # Use a network with negligible latency so the tiny test tensor is not
        # latency-dominated (the real experiments pair full-size work with the
        # real latency; see repro.experiments.calibration.scaled_machine).
        from repro.simmpi import BGQ_MACHINE

        machine = BGQ_MACHINE.with_overrides(
            network_latency=0.0, collective_latency_factor=0.0
        )
        t4 = estimate_iteration_time(
            tensor, make_partition(tensor, 4, "fine-hp", seed=0), ranks,
            machine=machine,
        )
        t16 = estimate_iteration_time(
            tensor, make_partition(tensor, 16, "fine-hp", seed=0), ranks,
            machine=machine,
        )
        assert t16 < t4

    def test_estimate_positive_for_all_strategies(self, tensor, ranks):
        for strategy in ALL_STRATEGIES:
            partition = make_partition(tensor, 4, strategy, seed=0)
            assert estimate_iteration_time(tensor, partition, ranks) > 0
