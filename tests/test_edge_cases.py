"""Edge-case and failure-injection tests across modules.

These cover the awkward inputs a downstream user will eventually produce:
ranks exceeding mode sizes, empty slices, ranks with no local work in the
distributed algorithm, degenerate (all-zero) tensors, and single-nonzero
tensors.
"""

import numpy as np

from repro.core import (
    HOOIOptions,
    SparseTensor,
    hooi,
    symbolic_ttmc,
    ttmc_matricized,
)
from repro.data import random_sparse_tensor
from repro.distributed import build_plans, distributed_hooi
from repro.parallel import ParallelConfig, shared_hooi
from repro.partition import TensorPartition, make_partition
from repro.util.linalg import random_orthonormal


def tensor_with_empty_slices():
    """A tensor whose mode-0 has several completely empty slices."""
    indices = np.array([
        [0, 0, 0],
        [0, 2, 1],
        [4, 1, 3],
        [4, 3, 0],
        [9, 0, 2],
    ])
    values = np.array([1.0, -2.0, 3.0, 0.5, 2.0])
    return SparseTensor(indices, values, (10, 4, 4))


class TestEmptySlices:
    def test_ttmc_rows_for_empty_slices_are_zero(self):
        tensor = tensor_with_empty_slices()
        factors = [random_orthonormal(s, 2, seed=i) for i, s in enumerate(tensor.shape)]
        y = ttmc_matricized(tensor, factors, 0)
        empty_rows = np.setdiff1d(np.arange(10), tensor.nonempty_rows(0))
        assert empty_rows.size > 0
        assert np.allclose(y[empty_rows], 0.0)

    def test_hooi_zero_rows_in_factor(self):
        tensor = tensor_with_empty_slices()
        result = hooi(tensor, 2, HOOIOptions(max_iterations=2, init="random", seed=0))
        u0 = result.decomposition.factors[0]
        empty_rows = np.setdiff1d(np.arange(10), tensor.nonempty_rows(0))
        # Rows of U corresponding to empty slices carry no energy.
        assert np.allclose(u0[empty_rows], 0.0, atol=1e-8)

    def test_distributed_with_empty_slices(self):
        tensor = tensor_with_empty_slices()
        options = HOOIOptions(max_iterations=2, init="random", seed=0)
        seq = hooi(tensor, 2, options)
        partition = make_partition(tensor, 2, "coarse-bl")
        dist = distributed_hooi(tensor, 2, partition, options)
        # The tensor is degenerate (near-null singular directions), so the two
        # solvers may pick slightly different basis vectors; the fits agree.
        assert np.allclose(dist.fit_history, seq.fit_history, atol=1e-3)


class TestDegenerateTensors:
    def test_single_nonzero_tensor(self):
        tensor = SparseTensor(np.array([[1, 2, 3]]), np.array([5.0]), (4, 5, 6))
        result = hooi(tensor, 1, HOOIOptions(max_iterations=2, init="random", seed=0))
        # A single nonzero is exactly rank one.
        assert result.fit > 1 - 1e-10

    def test_all_zero_values(self):
        tensor = SparseTensor(
            np.array([[0, 0], [1, 1]]), np.array([0.0, 0.0]), (3, 3)
        )
        result = hooi(tensor, 1, HOOIOptions(max_iterations=1, init="random", seed=0))
        assert result.fit == 1.0

    def test_rank_exceeding_mode_sizes_is_clipped(self):
        tensor = random_sparse_tensor((6, 5, 4), 40, seed=0)
        result = hooi(tensor, 50, HOOIOptions(max_iterations=2, init="random", seed=0))
        assert result.decomposition.ranks == (6, 5, 4)
        assert result.fit > 1 - 1e-6   # full rank reproduces the tensor

    def test_order_two_tensor_behaves_like_matrix_svd(self):
        tensor = random_sparse_tensor((30, 20), 150, seed=1)
        result = hooi(tensor, 4, HOOIOptions(max_iterations=4, init="hosvd"))
        dense = tensor.to_dense()
        _, s, _ = np.linalg.svd(dense)
        best_possible = np.sqrt(max(np.sum(s**2) - np.sum(s[:4] ** 2), 0.0))
        achieved = (1.0 - result.fit) * tensor.norm()
        assert achieved <= best_possible * 1.05 + 1e-9


class TestDistributedEdgeCases:
    def test_rank_with_no_nonzeros(self):
        """A rank owning zero nonzeros must still participate correctly."""
        tensor = random_sparse_tensor((12, 10, 8), 60, seed=2)
        nonzero_owner = np.zeros(tensor.nnz, dtype=np.int64)
        nonzero_owner[: tensor.nnz // 2] = 1     # ranks 0 and 1 share the data
        row_owner = [
            np.arange(s, dtype=np.int64) % 3 for s in tensor.shape
        ]  # rank 2 owns rows but no nonzeros
        partition = TensorPartition(
            kind="fine", strategy="custom", num_parts=3,
            row_owner=row_owner, nonzero_owner=nonzero_owner,
        )
        options = HOOIOptions(max_iterations=2, init="random", seed=0)
        seq = hooi(tensor, 3, options)
        dist = distributed_hooi(tensor, 3, partition, options)
        assert np.allclose(dist.fit_history, seq.fit_history, atol=1e-7)

    def test_more_ranks_than_rows_in_a_mode(self):
        tensor = random_sparse_tensor((3, 40, 40), 200, seed=3)
        options = HOOIOptions(max_iterations=2, init="random", seed=0)
        seq = hooi(tensor, 2, options)
        partition = make_partition(tensor, 6, "fine-rd", seed=0)
        dist = distributed_hooi(tensor, 2, partition, options)
        assert np.allclose(dist.fit_history, seq.fit_history, atol=1e-7)

    def test_plan_for_single_rank_has_no_communication(self):
        tensor = random_sparse_tensor((10, 10, 10), 100, seed=4)
        partition = make_partition(tensor, 1, "fine-rd", seed=0)
        _, plans = build_plans(tensor, partition, (2, 2, 2))
        plan = plans[0]
        for mp in plan.modes:
            assert not mp.factor_exchange.send
            assert not mp.factor_exchange.receive
            assert not mp.fold.send


class TestThreadedEdgeCases:
    def test_more_threads_than_rows(self):
        tensor = SparseTensor(
            np.array([[0, 0, 0], [1, 1, 1]]), np.array([1.0, 2.0]), (2, 2, 2)
        )
        report = shared_hooi(tensor, 1, HOOIOptions(max_iterations=1, seed=0),
                             config=ParallelConfig(num_threads=8))
        assert report.result.fit_history

    def test_symbolic_of_dense_mode(self):
        """Every index of a mode occupied: rows must cover the full range."""
        tensor = random_sparse_tensor((4, 50, 50), 2000, seed=5)
        sym = symbolic_ttmc(tensor, 0)
        assert np.array_equal(sym.rows, np.arange(4))
