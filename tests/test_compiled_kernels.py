"""The compiled-kernel tier: registry contract, edge cases, bit parity.

The ``kernel`` engine axis routes the TTMc hot loops either through the
vectorized NumPy kernels (``"numpy"``) or the fused loop bodies of
:mod:`repro.kernels` (``"numba"``).  The conformance matrix
(``test_conformance_matrix.py``) already asserts end-to-end engine parity
across the axis; this file covers what the matrix cannot see:

* the registry itself — availability probing, the actionable error on a
  numba-less interpreter, lazy table caching, warmup;
* kernel-level edge cases — empty row blocks, single-fiber trees, tensors
  whose tree degenerates to one chain;
* dtype behaviour — float32 runs drift from float64 by at most 1e-3 on the
  small fixtures here, and *exactly representable* inputs (small integers
  scaled by powers of two) produce **bit-identical** results across tiers,
  because the fused loops accumulate in the same order as the NumPy
  ``reduceat`` path (hypothesis generates the inputs);
* the allocation contract — with a warm :class:`WorkspacePool`, repeated
  CSF sweeps perform zero pool allocations on either tier.

Without numba installed, the whole file runs the numba tier through the
registry's interpreted fallback (``REPRO_KERNEL_FORCE_PYTHON``) — the exact
loop bodies numba compiles, so everything but the JIT itself is covered.
"""

import os

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.sparse_tensor import SparseTensor
from repro.core.symbolic import symbolic_ttmc
from repro.core.ttmc import ttmc_matricized
from repro.engine.workspace import WorkspacePool
from repro.kernels import (
    KERNEL_TIERS,
    kernel_available,
    kernel_table,
    numba_available,
    require_kernel,
    warmup_kernels,
)
from repro.parallel.shared_ttmc import ttmc_row_block
from repro.sparse import CSFTensor, csf_ttmc_compact, csf_ttmc_matricized
from repro.sparse.csf import rooted_mode_order


@pytest.fixture(scope="module", autouse=True)
def _kernel_tier_fallback():
    """Serve the numba tier interpreted when numba is not installed."""
    if numba_available() or os.environ.get("REPRO_KERNEL_FORCE_PYTHON"):
        yield
        return
    os.environ["REPRO_KERNEL_FORCE_PYTHON"] = "1"
    try:
        yield
    finally:
        os.environ.pop("REPRO_KERNEL_FORCE_PYTHON", None)


def make_tensor(shape, nnz, seed, dtype=np.float64):
    rng = np.random.default_rng(seed)
    idx = np.unique(
        np.stack([rng.integers(0, s, nnz) for s in shape], axis=1), axis=0
    )
    values = rng.standard_normal(idx.shape[0]).astype(dtype)
    return SparseTensor(idx, values, shape)


def make_factors(shape, ranks, seed, dtype=np.float64):
    rng = np.random.default_rng(seed)
    return [
        rng.standard_normal((s, r)).astype(dtype)
        for s, r in zip(shape, ranks)
    ]


class TestRegistry:
    def test_numpy_tier_always_available(self):
        assert kernel_available("numpy")
        assert require_kernel("numpy") == "numpy"
        assert kernel_table("numpy") is None

    def test_unknown_tier_rejected(self):
        assert not kernel_available("fortran")
        with pytest.raises(ValueError, match="unknown kernel"):
            require_kernel("fortran")

    def test_numba_unavailable_error_is_actionable(self, monkeypatch):
        """Without numba (and without the fallback hook) the error names
        both the install command and the numpy escape hatch."""
        if numba_available():
            pytest.skip("numba is installed; the availability error cannot fire")
        monkeypatch.delenv("REPRO_KERNEL_FORCE_PYTHON", raising=False)
        assert not kernel_available("numba")
        with pytest.raises(ValueError) as excinfo:
            require_kernel("numba")
        message = str(excinfo.value)
        assert "pip install numba" in message
        assert "numpy" in message

    def test_table_is_cached(self):
        table = kernel_table("numba")
        assert table is not None
        assert kernel_table("numba") is table

    def test_table_reports_compilation_state(self):
        table = kernel_table("numba")
        # Interpreted fallback <=> numba absent (with the autouse fixture on).
        assert table.compiled == numba_available()

    def test_warmup_runs_every_dispatcher(self):
        assert warmup_kernels("numpy") is None
        table = warmup_kernels("numba")
        assert table is not None
        table32 = warmup_kernels("numba", dtype=np.float32)
        assert table32 is table  # warmup never rebuilds the table

    def test_tier_tuple_matches_options_axis(self):
        from repro.core.hooi import KERNELS

        assert tuple(KERNEL_TIERS) == tuple(KERNELS)


class TestCOOEdgeCases:
    SHAPE = (9, 7, 5)
    RANKS = (3, 2, 2)

    def test_empty_row_block(self):
        """A worker handed zero rows must return a well-formed empty block."""
        tensor = make_tensor(self.SHAPE, 60, seed=0)
        factors = make_factors(self.SHAPE, self.RANKS, seed=1)
        symbolic = symbolic_ttmc(tensor, 0)
        block = ttmc_row_block(
            tensor, factors, 0, symbolic, np.empty(0, dtype=np.int64),
            kernel="numba",
        )
        assert block.shape == (0, 4)

    def test_row_subset_matches_numpy(self):
        """The compiled branch of the rows= path (incl. absent rows)."""
        tensor = make_tensor(self.SHAPE, 60, seed=0)
        factors = make_factors(self.SHAPE, self.RANKS, seed=1)
        rows = np.asarray([0, 3, 8], dtype=np.int64)
        ref = ttmc_matricized(tensor, factors, 0, rows=rows)
        got = ttmc_matricized(tensor, factors, 0, rows=rows, kernel="numba")
        np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_empty_tensor(self):
        tensor = SparseTensor(
            np.empty((0, 3), dtype=np.int64), np.empty(0), self.SHAPE
        )
        factors = make_factors(self.SHAPE, self.RANKS, seed=1)
        out = ttmc_matricized(tensor, factors, 1, kernel="numba")
        assert out.shape == (7, 6)
        assert not out.any()

    def test_single_nonzero(self):
        tensor = SparseTensor(
            np.asarray([[2, 3, 1]], dtype=np.int64), np.asarray([2.5]),
            self.SHAPE,
        )
        factors = make_factors(self.SHAPE, self.RANKS, seed=2)
        for mode in range(3):
            ref = ttmc_matricized(tensor, factors, mode)
            got = ttmc_matricized(tensor, factors, mode, kernel="numba")
            np.testing.assert_allclose(got, ref, atol=1e-14)


class TestCSFEdgeCases:
    def test_single_fiber_tree(self):
        """All nonzeros share one root fiber: every level has one node chain."""
        idx = np.asarray(
            [[4, 0, 0], [4, 0, 1], [4, 0, 2], [4, 1, 0]], dtype=np.int64
        )
        tensor = SparseTensor(idx, np.asarray([1.0, 2.0, 3.0, 4.0]), (6, 3, 4))
        factors = make_factors((6, 3, 4), (2, 2, 2), seed=3)
        for mode in range(3):
            csf = CSFTensor(
                tensor, mode_order=rooted_mode_order(tensor.shape, mode)
            )
            ref = ttmc_matricized(tensor, factors, mode)
            got = csf_ttmc_matricized(csf, factors, mode, kernel="numba")
            np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_one_nonzero_per_fiber(self):
        """Diagonal-like tensor: no prefix sharing at all, fibers of size 1."""
        idx = np.asarray([[i, i % 3, i % 4] for i in range(5)], dtype=np.int64)
        tensor = SparseTensor(idx, np.arange(1.0, 6.0), (5, 3, 4))
        factors = make_factors((5, 3, 4), (2, 2, 2), seed=4)
        csf = CSFTensor(tensor)  # shared tree: deep targets hit pushdown
        for mode in range(3):
            ref = ttmc_matricized(tensor, factors, mode)
            got = csf_ttmc_matricized(csf, factors, mode, kernel="numba")
            np.testing.assert_allclose(got, ref, atol=1e-12)

    def test_empty_tree(self):
        tensor = SparseTensor(
            np.empty((0, 3), dtype=np.int64), np.empty(0), (5, 3, 4)
        )
        factors = make_factors((5, 3, 4), (2, 2, 2), seed=5)
        csf = CSFTensor(tensor)
        rows, block = csf_ttmc_compact(csf, factors, 0, kernel="numba")
        assert rows.shape == (0,)
        assert block.shape == (0, 4)

    def test_four_mode_shared_tree(self):
        """Deep targets exercise pushdown refine + expand and the fused
        target-group accumulation."""
        shape = (5, 4, 6, 3)
        tensor = make_tensor(shape, 70, seed=6)
        factors = make_factors(shape, (2, 2, 3, 2), seed=7)
        csf = CSFTensor(tensor)
        for mode in range(4):
            ref = ttmc_matricized(tensor, factors, mode)
            got = csf_ttmc_matricized(csf, factors, mode, kernel="numba")
            np.testing.assert_allclose(got, ref, atol=1e-11)


class TestDtypeBehaviour:
    SHAPE = (8, 6, 5)
    RANKS = (3, 2, 2)

    @pytest.mark.parametrize("kernel", KERNEL_TIERS)
    def test_float32_tracks_float64_within_1e3(self, kernel):
        tensor64 = make_tensor(self.SHAPE, 80, seed=8)
        factors64 = make_factors(self.SHAPE, self.RANKS, seed=9)
        tensor32 = tensor64.astype(np.float32)
        factors32 = [f.astype(np.float32) for f in factors64]
        for mode in range(3):
            ref = ttmc_matricized(tensor64, factors64, mode, kernel=kernel)
            got = ttmc_matricized(tensor32, factors32, mode, kernel=kernel)
            assert got.dtype == np.float32
            np.testing.assert_allclose(got, ref, atol=1e-3)
            csf32 = CSFTensor(tensor32)
            got_csf = csf_ttmc_matricized(csf32, factors32, mode, kernel=kernel)
            assert got_csf.dtype == np.float32
            np.testing.assert_allclose(got_csf, ref, atol=1e-3)

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_bit_parity_on_exactly_representable_inputs(self, data):
        """On inputs where every product/sum is exact (small integers scaled
        by a power of two), the tiers must agree *bit for bit*: the fused
        loops only reassociate sums, and exact sums are associative."""
        shape = (5, 4, 3)
        nnz = data.draw(st.integers(min_value=1, max_value=12))
        rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
        idx = np.unique(
            np.stack([rng.integers(0, s, nnz) for s in shape], axis=1), axis=0
        )
        scale = 2.0 ** data.draw(st.integers(-2, 2))
        values = rng.integers(-4, 5, idx.shape[0]).astype(np.float64) * scale
        tensor = SparseTensor(idx, values, shape)
        factors = [
            rng.integers(-3, 4, (s, 2)).astype(np.float64) for s in shape
        ]
        for mode in range(3):
            ref = ttmc_matricized(tensor, factors, mode)
            got = ttmc_matricized(tensor, factors, mode, kernel="numba")
            assert (got == ref).all()
            csf = CSFTensor(
                tensor, mode_order=rooted_mode_order(shape, mode)
            )
            ref_csf = csf_ttmc_matricized(csf, factors, mode)
            got_csf = csf_ttmc_matricized(csf, factors, mode, kernel="numba")
            assert (got_csf == ref_csf).all()


class TestAllocationContract:
    """Satellite of the kernel tier: warm-pool sweeps never allocate."""

    SHAPE = (10, 8, 6, 4)
    RANKS = (3, 2, 2, 2)

    @pytest.mark.parametrize("kernel", KERNEL_TIERS)
    @pytest.mark.parametrize("tree", ["rooted", "shared"])
    def test_csf_sweep_zero_steady_state_allocations(self, kernel, tree):
        tensor = make_tensor(self.SHAPE, 150, seed=10)
        factors = make_factors(self.SHAPE, self.RANKS, seed=11)
        if tree == "rooted":
            trees = [
                CSFTensor(tensor, mode_order=rooted_mode_order(self.SHAPE, m))
                for m in range(4)
            ]
        else:
            trees = [CSFTensor(tensor)] * 4
        pool = WorkspacePool()
        for _ in range(2):  # warm every (tag, shape, dtype) key
            for mode in range(4):
                csf_ttmc_compact(
                    trees[mode], factors, mode, workspace=pool, kernel=kernel
                )
        allocations = pool.allocations
        for _ in range(3):
            for mode in range(4):
                csf_ttmc_compact(
                    trees[mode], factors, mode, workspace=pool, kernel=kernel
                )
        assert pool.allocations == allocations
        assert pool.reuses > 0

    @pytest.mark.parametrize("kernel", KERNEL_TIERS)
    def test_float32_cast_buffer_is_pooled(self, kernel):
        """A float32 engine over float64 values casts into a pooled buffer."""
        tensor = make_tensor(self.SHAPE[:3], 80, seed=12)  # float64 values
        factors = make_factors(self.SHAPE[:3], self.RANKS[:3], seed=13,
                               dtype=np.float32)
        csf = CSFTensor(tensor)
        pool = WorkspacePool()
        for _ in range(2):
            csf_ttmc_compact(csf, factors, 0, workspace=pool, kernel=kernel)
        allocations = pool.allocations
        csf_ttmc_compact(csf, factors, 0, workspace=pool, kernel=kernel)
        assert pool.allocations == allocations


class TestEngineKernelAxis:
    def test_engine_parity_and_rejections(self):
        """Spot-check the engine axis (the conformance matrix is the full
        sweep): numba matches numpy through hooi(), and dimtree rejects."""
        from repro.core import HOOIOptions, hooi

        shape = (8, 6, 5)
        tensor = make_tensor(shape, 90, seed=14)
        base = hooi(
            tensor, (3, 2, 2),
            HOOIOptions(max_iterations=2, seed=0),
        )
        compiled = hooi(
            tensor, (3, 2, 2),
            HOOIOptions(max_iterations=2, seed=0, kernel="numba"),
        )
        np.testing.assert_allclose(
            compiled.fit_history, base.fit_history, atol=1e-10
        )
        with pytest.raises(ValueError, match="numba"):
            HOOIOptions(kernel="numba", ttmc_strategy="dimtree").validate()
