"""The serializable API contract: options codec, fingerprints, the facade.

Three layers of the decomposition-as-a-service surface, tested bottom-up:

* :meth:`HOOIOptions.to_dict` / :meth:`HOOIOptions.from_dict` — the wire
  codec (roundtrip identity, unknown-key rejection with the field list);
* :meth:`HOOIOptions.options_fingerprint` and
  :meth:`SparseTensor.fingerprint` — the content-addressed identities the
  result cache is keyed by (order- and default-insensitive for options;
  storage-order-insensitive and value-sensitive for tensors, the latter
  property-based via hypothesis);
* :func:`repro.decompose` — the unified facade (routing, parity with the
  drivers it fronts, actionable rejection of bad combinations).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import HOOIOptions, SparseTensor, decompose, hooi
from repro.api import DECOMPOSE_EXECUTIONS


# --------------------------------------------------------------------------- #
# HOOIOptions codec
# --------------------------------------------------------------------------- #
class TestOptionsCodec:
    def test_roundtrip_identity(self):
        opts = HOOIOptions(
            max_iterations=7,
            trsvd_method="gram",
            seed=42,
            block_nnz=1000,
            dtype="float32",
            execution="thread",
            num_workers=3,
        )
        assert HOOIOptions.from_dict(opts.to_dict()) == opts

    def test_to_dict_covers_every_field(self):
        payload = HOOIOptions().to_dict()
        assert set(payload) == {
            f.name for f in dataclasses.fields(HOOIOptions)
        }

    def test_from_dict_defaults_missing_fields(self):
        opts = HOOIOptions.from_dict({"max_iterations": 9})
        assert opts.max_iterations == 9
        assert opts.trsvd_method == HOOIOptions().trsvd_method

    def test_from_dict_rejects_unknown_keys_with_field_list(self):
        with pytest.raises(ValueError) as excinfo:
            HOOIOptions.from_dict({"max_iter": 3})
        message = str(excinfo.value)
        assert "max_iter" in message
        # The error must teach: every valid key is listed.
        assert "max_iterations" in message and "trsvd_method" in message

    def test_to_dict_rejects_array_init(self):
        opts = HOOIOptions(init=[np.eye(3)])
        with pytest.raises(ValueError, match="init"):
            opts.to_dict()


class TestOptionsFingerprint:
    def test_insensitive_to_defaulted_vs_explicit(self):
        implicit = HOOIOptions(max_iterations=5)
        explicit = HOOIOptions.from_dict(
            {"max_iterations": 5, "trsvd_method": "lanczos"}
        )
        assert (
            implicit.options_fingerprint() == explicit.options_fingerprint()
        )

    def test_insensitive_to_construction_order(self):
        a = HOOIOptions.from_dict({"seed": 1, "dtype": "float32"})
        b = HOOIOptions.from_dict({"dtype": "float32", "seed": 1})
        assert a.options_fingerprint() == b.options_fingerprint()

    def test_sensitive_to_every_changed_field(self):
        base = HOOIOptions().options_fingerprint()
        for change in (
            {"max_iterations": 6},
            {"trsvd_method": "gram"},
            {"seed": 7},
            {"dtype": "float32"},
            {"execution": "thread"},
            {"tensor_format": "csf"},
        ):
            assert HOOIOptions.from_dict(change).options_fingerprint() != base


# --------------------------------------------------------------------------- #
# SparseTensor fingerprint
# --------------------------------------------------------------------------- #
def _tensor_from(indices, values, shape) -> SparseTensor:
    return SparseTensor(
        np.asarray(indices, dtype=np.int64),
        np.asarray(values, dtype=np.float64),
        shape,
        sum_duplicates=True,
    )


@st.composite
def coo_tensors(draw):
    """A small random COO tensor plus its (indices, values, shape) raw form."""
    order = draw(st.integers(min_value=2, max_value=3))
    shape = tuple(
        draw(st.integers(min_value=2, max_value=6)) for _ in range(order)
    )
    nnz = draw(st.integers(min_value=1, max_value=12))
    cells = draw(
        st.lists(
            st.tuples(*[st.integers(0, s - 1) for s in shape]),
            min_size=nnz,
            max_size=nnz,
            unique=True,
        )
    )
    values = draw(
        st.lists(
            st.floats(
                min_value=-8.0,
                max_value=8.0,
                allow_nan=False,
                allow_infinity=False,
            ).filter(lambda v: v != 0.0),
            min_size=len(cells),
            max_size=len(cells),
        )
    )
    return np.asarray(cells, dtype=np.int64), np.asarray(values), shape


FP_SETTINGS = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


class TestTensorFingerprint:
    @FP_SETTINGS
    @given(coo_tensors(), st.randoms(use_true_random=False))
    def test_equal_tensors_hash_equal_under_permutation(self, raw, rnd):
        indices, values, shape = raw
        order = list(range(indices.shape[0]))
        rnd.shuffle(order)
        a = _tensor_from(indices, values, shape)
        b = _tensor_from(indices[order], values[order], shape)
        assert a.fingerprint() == b.fingerprint()

    @FP_SETTINGS
    @given(coo_tensors(), st.data())
    def test_single_nonzero_perturbation_changes_hash(self, raw, data):
        indices, values, shape = raw
        victim = data.draw(
            st.integers(0, values.shape[0] - 1), label="perturbed nonzero"
        )
        perturbed = values.copy()
        perturbed[victim] += 1.0
        if perturbed[victim] == 0.0:  # keep the nonzero a nonzero
            perturbed[victim] += 1.0
        a = _tensor_from(indices, values, shape)
        b = _tensor_from(indices, perturbed, shape)
        assert a.fingerprint() != b.fingerprint()

    def test_shape_is_part_of_the_identity(self):
        indices = [[0, 0], [1, 1]]
        values = [1.0, 2.0]
        a = _tensor_from(indices, values, (2, 2))
        b = _tensor_from(indices, values, (3, 2))
        assert a.fingerprint() != b.fingerprint()

    def test_dtype_is_part_of_the_identity(self, small_tensor_3d):
        assert (
            small_tensor_3d.fingerprint()
            != small_tensor_3d.astype(np.float32).fingerprint()
        )

    def test_empty_tensor_fingerprints(self):
        empty = SparseTensor(
            np.empty((0, 2), dtype=np.int64), np.empty(0), (4, 4)
        )
        assert empty.fingerprint() == empty.fingerprint()
        assert empty.fingerprint() != _tensor_from(
            [[0, 0]], [1.0], (4, 4)
        ).fingerprint()


# --------------------------------------------------------------------------- #
# The decompose facade
# --------------------------------------------------------------------------- #
class TestDecomposeFacade:
    def test_matches_hooi_sequential(self, small_tensor_3d):
        via_facade = decompose(
            small_tensor_3d, 4, trsvd_method="gram", max_iterations=3
        )
        via_driver = hooi(
            small_tensor_3d,
            4,
            HOOIOptions(trsvd_method="gram", max_iterations=3),
        )
        np.testing.assert_allclose(
            via_facade.decomposition.core,
            via_driver.decomposition.core,
            atol=1e-12,
        )

    def test_thread_execution_routes_through_engine(self, small_tensor_3d):
        result = decompose(
            small_tensor_3d,
            3,
            execution="thread",
            num_workers=2,
            trsvd_method="gram",
            max_iterations=2,
        )
        assert result.iterations == 2

    def test_options_dict_plus_kwarg_overrides(self, small_tensor_3d):
        result = decompose(
            small_tensor_3d,
            3,
            options={"max_iterations": 4, "trsvd_method": "gram"},
            max_iterations=2,
        )
        assert result.iterations <= 2

    def test_options_object_accepted(self, small_tensor_3d):
        opts = HOOIOptions(trsvd_method="gram", max_iterations=2)
        result = decompose(small_tensor_3d, 3, options=opts)
        assert result.iterations <= 2
        # The caller's object is not mutated by the facade's normalization.
        assert opts.execution == "sequential"

    def test_unknown_execution_rejected(self, small_tensor_3d):
        with pytest.raises(ValueError, match="decompose"):
            decompose(small_tensor_3d, 3, execution="gpu")
        assert "distributed" in DECOMPOSE_EXECUTIONS

    def test_unknown_option_rejected_with_field_list(self, small_tensor_3d):
        with pytest.raises(ValueError, match="max_iterations"):
            decompose(small_tensor_3d, 3, max_iter=3)

    def test_distributed_requires_partition(self, small_tensor_3d):
        with pytest.raises(ValueError, match="partition"):
            decompose(small_tensor_3d, 3, execution="distributed")

    def test_partition_rejected_for_single_node(self, small_tensor_3d):
        with pytest.raises(ValueError, match="distributed"):
            decompose(small_tensor_3d, 3, partition=object())

    def test_distributed_routing(self, medium_tensor_3d):
        from repro.distributed import distributed_hooi
        from repro.partition import make_partition

        partition = make_partition(medium_tensor_3d, 2, "coarse-bl")
        via_facade = decompose(
            medium_tensor_3d,
            3,
            execution="distributed",
            partition=partition,
            max_iterations=2,
        )
        via_driver = distributed_hooi(
            medium_tensor_3d,
            3,
            partition,
            HOOIOptions(max_iterations=2),
        )
        np.testing.assert_allclose(
            via_facade.decomposition.core,
            via_driver.decomposition.core,
            atol=1e-12,
        )

    def test_cancel_check_aborts_mid_run(self, small_tensor_3d):
        class Abort(Exception):
            pass

        calls = []

        def cancel_check():
            calls.append(len(calls))
            if len(calls) == 4:  # second iteration, first mode
                raise Abort()

        with pytest.raises(Abort):
            decompose(
                small_tensor_3d,
                3,
                trsvd_method="gram",
                max_iterations=10,
                tolerance=0.0,
                cancel_check=cancel_check,
            )
        # One check per mode boundary: the abort fired on the 4th check.
        assert len(calls) == 4
