"""Chaos suite: scripted faults exercised end to end (``-m chaos``).

Every scenario here is *data-driven*: a seeded :class:`FaultPlan` names an
injection point compiled into the production code, and the test asserts the
system's reaction — a loud error, a bounded retry, a breaker trip plus
ladder descent — with no bespoke monkeypatching of internals.  Determinism
is the point: a failing scenario replays identically.

The whole module is marked ``chaos`` so the default tier-1 run stays fast;
CI's "Resilience chaos sweep" step runs it twice, under
``REPRO_PROCESS_START_METHOD=fork`` and ``=spawn`` — faults reach fork
workers by inheriting the armed injector and spawn workers through the
``REPRO_FAULTS`` environment variable, so worker-reaching tests set both.
"""

from __future__ import annotations

import asyncio
import os
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.hooi import HOOIOptions, hooi
from repro.core.sparse_tensor import SparseTensor
from repro.resilience.faults import (
    FAULT_ENV,
    INJECTION_POINTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    active_injector,
    clear_faults,
    install_faults,
    maybe_fail,
)

pytestmark = pytest.mark.chaos

GRAM = dict(trsvd_method="gram", seed=0)
needs_posix = pytest.mark.skipif(
    os.name != "posix", reason="worker pools need POSIX shared memory"
)


@pytest.fixture(autouse=True)
def _disarm(monkeypatch):
    """No fault plan may outlive its test (in-process or via env)."""
    monkeypatch.delenv(FAULT_ENV, raising=False)
    yield
    clear_faults()


def _tensor(shape=(20, 15, 12), nnz=300, seed=7) -> SparseTensor:
    rng = np.random.default_rng(seed)
    idx = np.unique(
        np.stack([rng.integers(0, s, nnz) for s in shape], axis=1), axis=0
    )
    return SparseTensor(idx, rng.standard_normal(len(idx)), shape)


def _shm_segments():
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if name.startswith("psm_") or name.startswith("rpshm-")
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


# --------------------------------------------------------------------------- #
# Plan validation and serialization
# --------------------------------------------------------------------------- #
class TestFaultSpec:
    def test_unknown_point_is_rejected(self):
        with pytest.raises(ValueError, match="unknown injection point"):
            FaultSpec("shm.atach")  # typo'd points must not silently no-op

    def test_unknown_action_and_error(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultSpec("trsvd", action="explode")
        with pytest.raises(ValueError, match="unknown error class"):
            FaultSpec("trsvd", error="KeyboardInterrupt")

    def test_counting_knobs(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec("trsvd", times=0)
        with pytest.raises(ValueError, match="after"):
            FaultSpec("trsvd", after=-1)
        with pytest.raises(ValueError, match="probability"):
            FaultSpec("trsvd", probability=0.0)
        FaultSpec("trsvd", times=-1)  # unlimited is valid

    def test_every_compiled_point_is_plannable(self):
        for point in INJECTION_POINTS:
            FaultSpec(point)


class TestFaultPlan:
    def test_json_roundtrip(self):
        plan = FaultPlan(
            [
                FaultSpec("worker.ack", action="exit", after=2),
                FaultSpec("trsvd", times=3, probability=0.5, message="boom"),
            ],
            seed=42,
        )
        back = FaultPlan.from_json(plan.to_json())
        assert back == plan

    def test_unknown_keys_are_rejected(self):
        with pytest.raises(ValueError, match="unknown FaultSpec key"):
            FaultPlan.from_json(
                '{"faults": [{"point": "trsvd", "severity": "high"}]}'
            )

    def test_malformed_payload_is_rejected(self):
        with pytest.raises(ValueError, match="faults"):
            FaultPlan.from_json('["not", "a", "plan"]')


# --------------------------------------------------------------------------- #
# Deterministic firing
# --------------------------------------------------------------------------- #
class TestFiring:
    def test_after_and_times_window(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec("trsvd", after=2, times=2)])
        )
        outcomes = []
        for _ in range(6):
            try:
                inj.fire("trsvd")
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("boom")
        # Hits 1-2 pass (after), 3-4 fire (times), 5-6 pass (exhausted).
        assert outcomes == ["ok", "ok", "boom", "boom", "ok", "ok"]
        assert inj.counters()["trsvd"] == (6, 2)

    def test_probability_is_seeded_and_replayable(self):
        plan = FaultPlan(
            [FaultSpec("trsvd", times=-1, probability=0.5)], seed=7
        )

        def pattern():
            inj = FaultInjector(plan)
            out = []
            for _ in range(40):
                try:
                    inj.fire("trsvd")
                    out.append(0)
                except InjectedFault:
                    out.append(1)
            return out

        first, second = pattern(), pattern()
        assert first == second  # same plan, same decisions — always
        assert 0 < sum(first) < 40

    def test_delay_action_stalls_then_continues(self):
        inj = FaultInjector(
            FaultPlan([FaultSpec("trsvd", action="delay", delay=0.05)])
        )
        start = time.monotonic()
        inj.fire("trsvd")  # stalls, does not raise
        assert time.monotonic() - start >= 0.05
        inj.fire("trsvd")  # fired out; instant no-op

    def test_unplanned_points_never_fire(self):
        inj = install_faults(FaultPlan([FaultSpec("worker.ack")]))
        maybe_fail("trsvd")
        maybe_fail("shm.attach")
        assert inj.counters() == {"worker.ack": (0, 0)}

    def test_disarmed_is_a_noop(self):
        clear_faults()
        assert active_injector() is None
        maybe_fail("trsvd")  # must be free and silent


# --------------------------------------------------------------------------- #
# Environment activation (the spawn-worker route)
# --------------------------------------------------------------------------- #
class TestEnvActivation:
    def _probe(self, env_value):
        env = dict(os.environ, PYTHONPATH="src", **{FAULT_ENV: env_value})
        return subprocess.run(
            [
                sys.executable,
                "-c",
                "from repro.resilience.faults import active_injector;"
                "import sys; sys.exit(0 if active_injector() else 3)",
            ],
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            capture_output=True,
            text=True,
        )

    def test_plan_arms_at_import(self):
        plan = FaultPlan([FaultSpec("trsvd")])
        assert self._probe(plan.to_json()).returncode == 0

    def test_malformed_plan_fails_loudly(self):
        # A chaos run whose faults silently never armed would read as
        # "everything survived" — import must abort instead.
        probe = self._probe("{not json")
        assert probe.returncode != 0
        assert "Error" in probe.stderr


# --------------------------------------------------------------------------- #
# Faults wired through the engine paths
# --------------------------------------------------------------------------- #
class TestEnginePoints:
    def test_trsvd_fault_surfaces_from_hooi(self):
        install_faults(FaultPlan([FaultSpec("trsvd")]))
        with pytest.raises(InjectedFault, match="point='trsvd'"):
            hooi(_tensor(), 4, HOOIOptions(max_iterations=2, **GRAM))
        # The run after the fault is exhausted completes normally.
        res = hooi(_tensor(), 4, HOOIOptions(max_iterations=2, **GRAM))
        assert res.completed_sweeps == 2

    @needs_posix
    def test_shm_attach_fault(self):
        from multiprocessing import shared_memory

        from repro.parallel.shm import attach_segment

        seg = shared_memory.SharedMemory(create=True, size=64)
        try:
            install_faults(FaultPlan([FaultSpec("shm.attach")]))
            with pytest.raises(InjectedFault):
                attach_segment(seg.name)
            clear_faults()
            attached = attach_segment(seg.name)
            attached.close()
        finally:
            seg.close()
            seg.unlink()


# --------------------------------------------------------------------------- #
# Worker-process faults (fork and spawn; CI sweeps both start methods)
# --------------------------------------------------------------------------- #
@needs_posix
class TestWorkerFaults:
    def test_worker_ack_exit_is_a_worker_crash(self, monkeypatch):
        """``action="exit"`` mid-task is the scripted SIGKILL equivalent."""
        from repro.parallel.process_pool import WorkerCrashError

        plan = FaultPlan([FaultSpec("worker.ack", action="exit")])
        # Arm both routes: fork workers inherit the injector by memory,
        # spawn workers re-import and read the environment.
        install_faults(plan)
        monkeypatch.setenv(FAULT_ENV, plan.to_json())

        before = _shm_segments()
        with pytest.raises(WorkerCrashError):
            hooi(
                _tensor(),
                4,
                # num_workers=2: a single-worker request degenerates to the
                # sequential backend and would never spawn a worker to kill.
                HOOIOptions(
                    max_iterations=2, execution="process", num_workers=2,
                    **GRAM,
                ),
            )
        assert _shm_segments() <= before  # crash path unlinked its arena


# --------------------------------------------------------------------------- #
# The acceptance scenario: broken pool → breaker → thread-tier completion
# --------------------------------------------------------------------------- #
@needs_posix
class TestBrokenPoolDegradation:
    def test_breaker_opens_and_thread_tier_completes(self, monkeypatch):
        """Every pool attempt fails → breaker opens → job still succeeds."""
        from repro.serving import DecompositionService, JobState

        # Driver-side dispatch fault: every pooled attempt dies with a
        # WorkerCrashError before any task reaches a worker.  times=-1 makes
        # the pool tier *persistently* broken.
        plan = FaultPlan(
            [
                FaultSpec(
                    "pool.dispatch", error="WorkerCrashError", times=-1,
                    message="scripted broken pool",
                )
            ]
        )
        install_faults(plan)
        monkeypatch.setenv(FAULT_ENV, plan.to_json())

        async def main():
            async with DecompositionService(
                num_workers=1, max_retries=1, breaker_threshold=2,
                warmup=False,
            ) as service:
                with pytest.warns(RuntimeWarning, match="degrading"):
                    handle = await service.submit(
                        _tensor(), 4, execution="process",
                        max_iterations=3, **GRAM,
                    )
                    result = await handle.result()
                return result, handle.state, service.metrics()

        before = _shm_segments()
        result, state, metrics = asyncio.run(main())
        assert state is JobState.DONE
        assert result.completed_sweeps == 3
        assert metrics["fallbacks"]["thread"] == 1
        assert metrics["pool"]["breaker_state"] == "open"
        assert metrics["jobs"]["done"] == 1
        assert metrics["jobs"]["failed"] == 0
        # The thread tier computes what the process tier would have.
        clear_faults()
        full = hooi(_tensor(), 4, HOOIOptions(max_iterations=3, **GRAM))
        for a, b in zip(
            full.decomposition.factors, result.decomposition.factors
        ):
            np.testing.assert_allclose(a, b, atol=1e-10, rtol=0)
        assert _shm_segments() <= before

    def test_serving_run_direct_fault_fails_loudly(self, monkeypatch):
        """Non-crash errors never degrade — they surface as FAILED."""
        from repro.serving import DecompositionService, JobState

        install_faults(
            FaultPlan([FaultSpec("serving.run_direct", error="RuntimeError")])
        )

        async def main():
            async with DecompositionService(
                num_workers=1, warmup=False
            ) as service:
                handle = await service.submit(
                    _tensor(), 4, execution="sequential",
                    max_iterations=2, **GRAM,
                )
                with pytest.raises(RuntimeError, match="injected fault"):
                    await handle.result()
                return handle.state, service.metrics()

        state, metrics = asyncio.run(main())
        assert state is JobState.FAILED
        assert metrics["fallbacks"] == {}
