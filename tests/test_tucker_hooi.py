"""Tests for the TuckerTensor container, HOSVD init and the sequential HOOI."""

import numpy as np
import pytest

from repro.core import (
    HOOIOptions,
    SparseTensor,
    TuckerTensor,
    core_from_ttmc,
    dense_ttm_chain,
    hooi,
    hooi_iteration_stats,
    hosvd_init,
    initialize_factors,
    random_init,
    tucker_fit,
    ttmc_matricized,
    unfold,
)
from repro.data import random_tucker_tensor


class TestTuckerTensor:
    def test_shape_and_ranks(self):
        t = random_tucker_tensor((10, 8, 6), (3, 2, 2), seed=0)
        assert t.shape == (10, 8, 6)
        assert t.ranks == (3, 2, 2)
        assert t.order == 3

    def test_norm_matches_dense(self):
        t = random_tucker_tensor((8, 7, 6), (3, 3, 2), seed=1)
        assert np.isclose(t.norm(), np.linalg.norm(t.to_dense()))

    def test_norm_non_orthonormal_factors(self, rng):
        core = rng.standard_normal((2, 2))
        factors = [rng.standard_normal((5, 2)), rng.standard_normal((4, 2))]
        t = TuckerTensor(core=core, factors=factors)
        assert np.isclose(t.norm(), np.linalg.norm(t.to_dense()))

    def test_reconstruct_entries_matches_dense(self, rng):
        t = random_tucker_tensor((6, 5, 4), (2, 2, 2), seed=2)
        dense = t.to_dense()
        coords = np.column_stack([rng.integers(0, s, 20) for s in t.shape])
        values = t.reconstruct_entries(coords)
        assert np.allclose(values, dense[tuple(coords.T)])

    def test_reconstruct_entries_bad_shape(self):
        t = random_tucker_tensor((6, 5, 4), 2, seed=0)
        with pytest.raises(ValueError):
            t.reconstruct_entries(np.zeros((3, 2), dtype=int))

    def test_compression_ratio(self):
        t = random_tucker_tensor((20, 20, 20), 2, seed=0)
        assert t.compression_ratio() > 1.0
        assert t.compression_ratio(nnz=100) < t.compression_ratio()

    def test_mismatched_core_factor_raises(self):
        with pytest.raises(ValueError):
            TuckerTensor(core=np.zeros((2, 2)), factors=[np.zeros((5, 2)), np.zeros((4, 3))])

    def test_order_mismatch_raises(self):
        with pytest.raises(ValueError):
            TuckerTensor(core=np.zeros((2, 2, 2)), factors=[np.zeros((5, 2))] * 2)


class TestCoreAndFit:
    def test_core_from_ttmc_matches_dense(self, small_tensor_3d, factors_3d):
        ranks = tuple(f.shape[1] for f in factors_3d)
        last_mode = small_tensor_3d.order - 1
        y_last = ttmc_matricized(small_tensor_3d, factors_3d, last_mode)
        core = core_from_ttmc(y_last, factors_3d[last_mode], ranks)
        expected = dense_ttm_chain(
            small_tensor_3d.to_dense(), factors_3d, transpose=True
        )
        assert np.allclose(core, expected)

    def test_fit_orthonormal_shortcut_matches_dense(self, small_tensor_3d, factors_3d):
        ranks = tuple(f.shape[1] for f in factors_3d)
        core = dense_ttm_chain(small_tensor_3d.to_dense(), factors_3d, transpose=True)
        model = TuckerTensor(core=core, factors=list(factors_3d))
        fast = tucker_fit(small_tensor_3d, model, assume_orthonormal=True)
        slow = tucker_fit(small_tensor_3d, model, assume_orthonormal=False)
        assert np.isclose(fast, slow, atol=1e-10)

    def test_fit_of_exact_model_is_one(self):
        truth = random_tucker_tensor((8, 7, 6), (3, 2, 2), seed=3)
        tensor = SparseTensor.from_dense(truth.to_dense())
        assert tucker_fit(tensor, truth) > 1 - 1e-10

    def test_fit_zero_tensor(self):
        t = SparseTensor.empty((4, 4, 4))
        model = random_tucker_tensor((4, 4, 4), 2, seed=0)
        assert tucker_fit(t, model) == 1.0


class TestInitialization:
    def test_random_init_shapes_and_orthonormality(self, small_tensor_3d):
        factors = random_init(small_tensor_3d, (5, 4, 3), seed=0)
        for f, size, rank in zip(factors, small_tensor_3d.shape, (5, 4, 3)):
            assert f.shape == (size, rank)
            assert np.allclose(f.T @ f, np.eye(rank), atol=1e-10)

    def test_hosvd_init_captures_leading_subspace(self, small_tensor_3d):
        factors = hosvd_init(small_tensor_3d, (5, 4, 3))
        dense = small_tensor_3d.to_dense()
        for mode, factor in enumerate(factors):
            u, _, _ = np.linalg.svd(unfold(dense, mode), full_matrices=False)
            k = factor.shape[1]
            ours = factor @ factor.T
            ref = u[:, :k] @ u[:, :k].T
            assert np.allclose(ours, ref, atol=1e-6)

    def test_hosvd_lanczos_backend(self, small_tensor_3d):
        factors = hosvd_init(small_tensor_3d, 3, backend="lanczos")
        for f in factors:
            assert np.allclose(f.T @ f, np.eye(3), atol=1e-8)

    def test_initialize_factors_explicit_list(self, small_tensor_3d, factors_3d):
        out = initialize_factors(small_tensor_3d, (5, 4, 3), init=factors_3d)
        for a, b in zip(out, factors_3d):
            assert np.allclose(a, b)
            assert a is not b  # copies

    def test_initialize_factors_bad_shape(self, small_tensor_3d, factors_3d):
        bad = [f[:-1] for f in factors_3d]
        with pytest.raises(ValueError):
            initialize_factors(small_tensor_3d, (5, 4, 3), init=bad)

    def test_initialize_factors_unknown_string(self, small_tensor_3d):
        with pytest.raises(ValueError):
            initialize_factors(small_tensor_3d, 3, init="bogus")


class TestHOOI:
    def test_fit_monotonically_nondecreasing(self, medium_tensor_3d):
        result = hooi(medium_tensor_3d, 5, HOOIOptions(max_iterations=5, init="hosvd"))
        fits = np.array(result.fit_history)
        assert np.all(np.diff(fits) >= -1e-9)

    def test_factors_orthonormal(self, small_tensor_3d):
        result = hooi(small_tensor_3d, (5, 4, 3), HOOIOptions(max_iterations=3))
        for f in result.decomposition.factors:
            assert np.allclose(f.T @ f, np.eye(f.shape[1]), atol=1e-8)

    def test_fit_consistent_with_tucker_fit(self, small_tensor_3d):
        result = hooi(small_tensor_3d, (5, 4, 3), HOOIOptions(max_iterations=3))
        assert np.isclose(result.fit, tucker_fit(small_tensor_3d, result.decomposition),
                          atol=1e-9)

    def test_exact_recovery_of_lowrank_tensor(self):
        truth = random_tucker_tensor((15, 12, 10), (3, 2, 2), seed=5)
        tensor = SparseTensor.from_dense(truth.to_dense())
        result = hooi(tensor, (3, 2, 2), HOOIOptions(max_iterations=8, init="hosvd"))
        assert result.fit > 0.999

    def test_full_rank_reproduces_tensor(self, small_tensor_3d):
        ranks = small_tensor_3d.shape
        result = hooi(small_tensor_3d, ranks, HOOIOptions(max_iterations=2, init="hosvd"))
        assert result.fit > 0.999

    def test_4d_hooi_runs(self, small_tensor_4d):
        result = hooi(small_tensor_4d, 3, HOOIOptions(max_iterations=3))
        assert result.decomposition.core.shape == (3, 3, 3, 3)
        assert len(result.fit_history) == result.iterations

    def test_convergence_stops_early(self):
        truth = random_tucker_tensor((12, 10, 8), 2, seed=6)
        tensor = SparseTensor.from_dense(truth.to_dense())
        result = hooi(tensor, 2, HOOIOptions(max_iterations=50, init="hosvd",
                                             tolerance=1e-8))
        assert result.converged
        assert result.iterations < 50

    def test_callback_invoked(self, small_tensor_3d):
        calls = []
        hooi(
            small_tensor_3d, 3,
            HOOIOptions(max_iterations=3),
            callback=lambda it, fit: calls.append((it, fit)),
        )
        assert len(calls) == 3

    def test_randomized_trsvd_backend(self, small_tensor_3d):
        a = hooi(small_tensor_3d, 3, HOOIOptions(max_iterations=3, seed=0))
        b = hooi(small_tensor_3d, 3,
                 HOOIOptions(max_iterations=3, trsvd_method="randomized", seed=0))
        # Both should reach a similar fit (the subspaces agree to solver accuracy).
        assert abs(a.fit - b.fit) < 1e-3

    def test_iteration_stats(self, small_tensor_3d):
        result = hooi(small_tensor_3d, 3, HOOIOptions(max_iterations=2))
        stats = hooi_iteration_stats(result)
        assert stats["ttmc"] > 0
        assert stats["trsvd"] > 0

    def test_timings_recorded(self, small_tensor_3d):
        result = hooi(small_tensor_3d, 3, HOOIOptions(max_iterations=2))
        assert result.timings["ttmc"] > 0
        assert result.timings["symbolic"] >= 0

    def test_track_fit_disabled(self, small_tensor_3d):
        result = hooi(small_tensor_3d, 3,
                      HOOIOptions(max_iterations=2, track_fit=False))
        # No per-iteration tracking, but the final fit is evaluated once so
        # the result is never NaN; convergence is never declared.
        assert len(result.fit_history) == 1
        assert np.isfinite(result.fit)
        assert not result.converged
        tracked = hooi(small_tensor_3d, 3, HOOIOptions(max_iterations=2))
        assert np.isclose(result.fit, tracked.fit, atol=1e-12)

    def test_fit_raises_on_empty_history(self, small_tensor_3d):
        # A result assembled from a run that died mid-iteration has no fit;
        # accessing it must raise instead of silently returning NaN.
        result = hooi(small_tensor_3d, 3, HOOIOptions(max_iterations=1))
        result.fit_history.clear()
        with pytest.raises(ValueError, match="fit_history is empty"):
            result.fit
