"""Dimension-tree TTMc tests.

Covers the tentpole contract of the dimtree backend:

* tree construction for orders 3..6 — leaf/internal mode sets partition
  correctly and node fibers are exactly the distinct index tuples;
* the subset kernels (fiber grouping, Kronecker insertion) against explicit
  references;
* cache invalidation — after refreshing a factor, exactly the root-to-leaf
  path of that mode stays fresh, a steady HOOI sweep recomputes each
  non-root node once, and pooled node buffers stop allocating after warm-up;
* numeric equivalence of ``dimtree`` vs ``per-mode`` TTMc results and final
  HOOI fits on random and structured low-rank tensors in both dtypes
  (float64 to 1e-10; float32 to 1e-10 on exactly-representable data, where
  both strategies are bitwise-exact, and to machine-eps scale on random
  data, where summation order legitimately differs);
* the ``HOOIOptions.ttmc_strategy`` plumbing on the sequential and threaded
  drivers.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    HOOIOptions,
    SparseTensor,
    group_fibers,
    hooi,
    kron_insert,
    kron_rows,
    subset_widths,
    ttmc_matricized,
)
from repro.data import planted_lowrank_tensor
from repro.engine import (
    DimensionTree,
    DimTreeBackend,
    HOOIEngine,
    SequentialBackend,
    ThreadedDimTreeBackend,
    WorkspacePool,
    resolve_ttmc_backend,
)
from repro.parallel import ParallelConfig, shared_hooi
from repro.util.linalg import random_orthonormal


def _random_tensor(shape, nnz, seed) -> SparseTensor:
    rng = np.random.default_rng(seed)
    indices = np.column_stack(
        [rng.integers(0, s, size=nnz, dtype=np.int64) for s in shape]
    )
    values = rng.standard_normal(nnz)
    return SparseTensor(indices, values, shape, sum_duplicates=True)


def _factors(shape, ranks, seed=0):
    return [
        random_orthonormal(s, r, seed=seed + 31 * i)
        for i, (s, r) in enumerate(zip(shape, ranks))
    ]


_SHAPES = {
    3: ((12, 10, 9), (4, 3, 3)),
    4: ((10, 9, 8, 7), (3, 3, 2, 2)),
    5: ((8, 7, 6, 5, 4), (2, 2, 2, 2, 2)),
    6: ((6, 6, 5, 5, 4, 4), (2, 2, 2, 2, 2, 2)),
}


class TestTreeConstruction:
    @pytest.mark.parametrize("order", [3, 4, 5, 6])
    def test_mode_sets_partition(self, order):
        shape, _ = _SHAPES[order]
        tree = DimensionTree(_random_tensor(shape, 200, seed=order))
        assert tree.root.modes == tuple(range(order))
        assert [leaf.modes for leaf in tree.leaves] == [
            (n,) for n in range(order)
        ]
        for node in tree.nodes:
            if node.is_leaf:
                assert node.left is None and node.right is None
                continue
            left, right = node.left, node.right
            assert left.modes + right.modes == node.modes
            assert left.sibling_modes == right.modes
            assert right.sibling_modes == left.modes

    @pytest.mark.parametrize("order", [3, 4, 5, 6])
    def test_node_fibers_are_distinct_index_tuples(self, order):
        shape, _ = _SHAPES[order]
        tensor = _random_tensor(shape, 200, seed=10 + order)
        tree = DimensionTree(tensor)
        for node in tree.nodes:
            expected = np.unique(tensor.indices[:, list(node.modes)], axis=0)
            if node is tree.root:
                # The root keeps one fiber per nonzero (no merging needed).
                assert node.num_fibers == tensor.nnz
            else:
                assert np.array_equal(
                    np.unique(node.index_cols, axis=0), expected
                )
                assert node.num_fibers == expected.shape[0]

    def test_path_walks_root_to_leaf(self):
        shape, _ = _SHAPES[5]
        tree = DimensionTree(_random_tensor(shape, 150, seed=3))
        for mode in range(5):
            path = tree.path(mode)
            assert path[0] is tree.root
            assert path[-1] is tree.leaves[mode]
            for above, below in zip(path, path[1:]):
                assert below.parent is above
                assert mode in below.modes

    def test_order_one_rejected(self):
        tensor = SparseTensor(
            np.arange(5, dtype=np.int64).reshape(-1, 1), np.ones(5), (5,)
        )
        with pytest.raises(ValueError, match="order >= 2"):
            DimensionTree(tensor)


class TestSubsetKernels:
    def test_group_fibers_matches_unique(self):
        rng = np.random.default_rng(0)
        cols = rng.integers(0, 4, size=(60, 2))
        grouping = group_fibers(cols)
        uniq, counts = np.unique(cols, axis=0, return_counts=True)
        assert np.array_equal(grouping.indices, uniq)
        assert np.array_equal(grouping.group_sizes(), counts)
        for g in range(grouping.num_groups):
            members = grouping.perm[grouping.segptr[g] : grouping.segptr[g + 1]]
            assert np.array_equal(
                cols[members], np.tile(uniq[g], (len(members), 1))
            )

    def test_kron_insert_matches_explicit_kron(self):
        rng = np.random.default_rng(1)
        lo, mid, hi = 3, 4, 2
        low = rng.standard_normal((7, lo))
        middle = rng.standard_normal((7, mid))
        high = rng.standard_normal((7, hi))
        payload = np.stack([kron_rows([a, c]) for a, c in zip(low, high)])
        inserted = kron_insert(payload, middle, lo, hi)
        expected = np.stack(
            [kron_rows([a, b, c]) for a, b, c in zip(low, middle, high)]
        )
        assert np.allclose(inserted, expected, atol=1e-12)

    def test_subset_widths(self):
        assert subset_widths((2, 3, 4, 5), 1, 2) == (2, 5)
        assert subset_widths((2, 3, 4, 5), 0, 3) == (1, 1)
        assert subset_widths((2, None, None, 5), 1, 2) == (2, 5)


class TestCacheInvalidation:
    @pytest.fixture
    def tensor(self):
        shape, _ = _SHAPES[4]
        return _random_tensor(shape, 300, seed=21)

    @pytest.fixture
    def factors(self, tensor):
        _, ranks = _SHAPES[4]
        return _factors(tensor.shape, ranks)

    def test_fresh_set_is_root_to_leaf_path(self, tensor, factors):
        tree = DimensionTree(tensor)
        for mode in range(tensor.order):
            tree.leaf_matricized(mode, factors)
        assert set(map(id, tree.fresh_nodes())) == set(map(id, tree.nodes))
        for mode in range(tensor.order):
            tree.invalidate_factor(mode)
            fresh = tree.fresh_nodes()
            assert set(map(id, fresh)) == set(map(id, tree.path(mode)))
            # Recompute everything before checking the next mode.
            for m in range(tensor.order):
                tree.leaf_matricized(m, factors)

    def test_steady_sweep_recomputes_each_node_once(self, tensor, factors):
        tree = DimensionTree(tensor)
        for _ in range(3):
            before = tree.edge_updates
            for mode in range(tensor.order):
                tree.leaf_matricized(mode, factors)
                tree.invalidate_factor(mode)
            assert tree.edge_updates - before == len(tree.nodes) - 1

    def test_no_recompute_while_factors_unchanged(self, tensor, factors):
        tree = DimensionTree(tensor)
        for mode in range(tensor.order):
            tree.leaf_matricized(mode, factors)
        before = tree.edge_updates
        for mode in range(tensor.order):
            tree.leaf_matricized(mode, factors)
        assert tree.edge_updates == before

    def test_pooled_node_buffers_stop_allocating(self, tensor, factors):
        tree = DimensionTree(tensor)
        pool = WorkspacePool()
        for mode in range(tensor.order):
            tree.leaf_matricized(mode, factors, workspace=pool)
            tree.invalidate_factor(mode)
        warm = pool.allocations
        for _ in range(2):
            for mode in range(tensor.order):
                tree.leaf_matricized(mode, factors, workspace=pool)
                tree.invalidate_factor(mode)
        assert pool.allocations == warm
        assert pool.reuses > 0


class TestEquivalence:
    @pytest.mark.parametrize("order", [3, 4, 5, 6])
    def test_ttmc_matches_per_mode_float64(self, order):
        shape, ranks = _SHAPES[order]
        tensor = _random_tensor(shape, 350, seed=40 + order)
        factors = _factors(shape, ranks)
        tree = DimensionTree(tensor)
        for mode in range(order):
            expected = ttmc_matricized(tensor, factors, mode)
            got = tree.leaf_matricized(mode, factors)
            assert got.shape == expected.shape
            assert np.allclose(got, expected, atol=1e-10)

    def test_ttmc_matches_on_structured_lowrank(self):
        tensor, _ = planted_lowrank_tensor(
            (14, 12, 10, 8), (3, 2, 2, 2), 1200, seed=9
        )
        factors = _factors(tensor.shape, (3, 3, 2, 2), seed=5)
        tree = DimensionTree(tensor)
        for mode in range(tensor.order):
            expected = ttmc_matricized(tensor, factors, mode)
            got = tree.leaf_matricized(mode, factors)
            assert np.allclose(got, expected, atol=1e-10)

    def test_ttmc_float32_exact_on_representable_data(self):
        # Values and factor entries are small dyadic rationals, so every
        # product is an integer multiple of 2^-12 far below 2^24 and every
        # partial sum is exact in float32 regardless of association: the two
        # strategies must agree to 1e-10 (in fact bitwise).
        rng = np.random.default_rng(17)
        shape = (12, 10, 9, 8)
        indices = np.column_stack(
            [rng.integers(0, s, size=300, dtype=np.int64) for s in shape]
        )
        values = rng.choice([-2.0, -1.0, 1.0, 2.0], size=300)
        tensor = SparseTensor(
            indices, values, shape, sum_duplicates=True, dtype="float32"
        )
        factors = [
            (rng.integers(-4, 5, size=(s, 3)) / 16.0).astype(np.float32)
            for s in shape
        ]
        tree = DimensionTree(tensor)
        for mode in range(tensor.order):
            expected = ttmc_matricized(tensor, factors, mode)
            got = tree.leaf_matricized(mode, factors)
            assert got.dtype == np.float32
            assert np.abs(got - expected).max() <= 1e-10

    def test_ttmc_float32_random_within_eps(self):
        shape, ranks = _SHAPES[4]
        tensor = _random_tensor(shape, 350, seed=51).astype(np.float32)
        factors = [
            f.astype(np.float32) for f in _factors(shape, ranks, seed=3)
        ]
        tree = DimensionTree(tensor)
        for mode in range(tensor.order):
            expected = ttmc_matricized(tensor, factors, mode)
            got = tree.leaf_matricized(mode, factors)
            assert got.dtype == np.float32
            # Summation order differs between the strategies; agreement is
            # bounded by float32 machine epsilon, not 1e-10.
            assert np.allclose(got, expected, rtol=1e-4, atol=1e-5)

    @pytest.mark.parametrize("dtype", ["float64", "float32"])
    def test_hooi_fit_matches_per_mode(self, dtype):
        tensor, _ = planted_lowrank_tensor((24, 20, 16, 12), (3, 3, 2, 2), 2500, seed=2)
        options = dict(max_iterations=4, init="hosvd", seed=0, dtype=dtype)
        per_mode = hooi(tensor, (3, 3, 2, 2), HOOIOptions(**options))
        dimtree = hooi(
            tensor, (3, 3, 2, 2),
            HOOIOptions(ttmc_strategy="dimtree", **options),
        )
        tol = 1e-10 if dtype == "float64" else 1e-4
        assert np.allclose(
            per_mode.fit_history, dimtree.fit_history, atol=tol
        )

    def test_hooi_fit_matches_on_random_tensor(self):
        tensor = _random_tensor((30, 24, 18), 2500, seed=8)
        options = dict(max_iterations=4, seed=0)
        per_mode = hooi(tensor, (4, 4, 3), HOOIOptions(**options))
        dimtree = hooi(
            tensor, (4, 4, 3), HOOIOptions(ttmc_strategy="dimtree", **options)
        )
        assert np.allclose(
            per_mode.fit_history, dimtree.fit_history, atol=1e-10
        )

    def test_threaded_dimtree_matches_sequential(self):
        shape, ranks = _SHAPES[4]
        tensor = _random_tensor(shape, 400, seed=61)
        factors = _factors(shape, ranks, seed=7)
        tree = DimensionTree(tensor)
        config = ParallelConfig(num_threads=3)
        for mode in range(tensor.order):
            expected = ttmc_matricized(tensor, factors, mode)
            got = tree.leaf_matricized(mode, factors, parallel_config=config)
            assert np.allclose(got, expected, atol=1e-10)


class TestLeafLocalRows:
    """The distributed driver's hook: compact leaf blocks over chosen rows."""

    @pytest.mark.parametrize("order", [3, 4])
    def test_block_matches_full_result_rows(self, order):
        shape, ranks = _SHAPES[order]
        tensor = _random_tensor(shape, 300, seed=17)
        factors = _factors(shape, ranks, seed=3)
        tree = DimensionTree(tensor)
        rng = np.random.default_rng(5)
        for mode in range(order):
            full = tree.leaf_matricized(mode, factors)
            # A sorted mix of non-empty and (possibly) empty rows.
            rows = np.unique(rng.integers(0, shape[mode], 6))
            block = tree.leaf_matricized(
                mode, factors, local_rows=rows
            )
            assert block.shape == (rows.shape[0], full.shape[1])
            assert np.allclose(block, full[rows], atol=1e-12)

    def test_rows_without_local_nonzeros_come_back_zero(self):
        shape, ranks = _SHAPES[3]
        tensor = _random_tensor(shape, 40, seed=2)
        factors = _factors(shape, ranks, seed=1)
        tree = DimensionTree(tensor)
        empty_rows = np.setdiff1d(
            np.arange(shape[0]), tensor.nonempty_rows(0)
        )
        if empty_rows.size:
            block = tree.leaf_matricized(
                0, factors, local_rows=empty_rows[:3]
            )
            assert not block.any()

    def test_empty_row_set(self):
        shape, ranks = _SHAPES[3]
        tensor = _random_tensor(shape, 100, seed=9)
        factors = _factors(shape, ranks, seed=0)
        tree = DimensionTree(tensor)
        block = tree.leaf_matricized(
            0, factors, local_rows=np.empty(0, dtype=np.int64)
        )
        assert block.shape[0] == 0


class TestStrategyPlumbing:
    def test_default_strategy_is_per_mode(self):
        assert HOOIOptions().ttmc_strategy == "per-mode"
        assert isinstance(resolve_ttmc_backend(HOOIOptions()), SequentialBackend)
        assert not isinstance(
            resolve_ttmc_backend(HOOIOptions()), DimTreeBackend
        )

    def test_resolver_selects_dimtree_backends(self):
        options = HOOIOptions(ttmc_strategy="dimtree")
        assert isinstance(resolve_ttmc_backend(options), DimTreeBackend)
        threaded = resolve_ttmc_backend(options, ParallelConfig(num_threads=2))
        assert isinstance(threaded, ThreadedDimTreeBackend)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="ttmc_strategy"):
            resolve_ttmc_backend(HOOIOptions(ttmc_strategy="magic"))
        tensor = _random_tensor((8, 7, 6), 100, seed=1)
        with pytest.raises(ValueError, match="ttmc_strategy"):
            hooi(tensor, 2, HOOIOptions(ttmc_strategy="magic"))

    def test_distributed_driver_runs_rank_local_dimtrees(self):
        # Since the hybrid-grain work the distributed driver composes with
        # the dimension tree: each rank builds a rank-local tree and its
        # leaves serve only the rank's rows, matching per-mode to 1e-10.
        from repro.distributed import distributed_hooi
        from repro.partition import make_partition

        tensor = _random_tensor((12, 10, 8), 300, seed=5)
        partition = make_partition(tensor, 2, "coarse-bl")
        per_mode = distributed_hooi(
            tensor, 2, partition, HOOIOptions(max_iterations=2, seed=0)
        )
        dimtree = distributed_hooi(
            tensor, 2, partition,
            HOOIOptions(max_iterations=2, seed=0, ttmc_strategy="dimtree"),
        )
        assert np.allclose(
            dimtree.fit_history, per_mode.fit_history, atol=1e-10
        )

    def test_shared_hooi_dimtree_matches_per_mode(self, medium_tensor_3d):
        options = dict(max_iterations=3, init="hosvd", seed=0)
        config = ParallelConfig(num_threads=2)
        per_mode = shared_hooi(
            medium_tensor_3d, 5, HOOIOptions(**options), config=config
        )
        dimtree = shared_hooi(
            medium_tensor_3d, 5,
            HOOIOptions(ttmc_strategy="dimtree", **options), config=config,
        )
        assert dimtree.result.fit_history == pytest.approx(
            per_mode.result.fit_history, abs=1e-10
        )

    def test_engine_with_dimtree_backend_directly(self, small_tensor_4d):
        options = HOOIOptions(max_iterations=3, seed=0)
        seq = HOOIEngine(
            small_tensor_4d, (3, 3, 2, 2), options, backend=SequentialBackend()
        ).run()
        dt = HOOIEngine(
            small_tensor_4d, (3, 3, 2, 2), options, backend=DimTreeBackend()
        ).run()
        assert np.allclose(seq.fit_history, dt.fit_history, atol=1e-10)
        for a, b in zip(seq.decomposition.factors, dt.decomposition.factors):
            assert np.allclose(np.abs(a), np.abs(b), atol=1e-8)
