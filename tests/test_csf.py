"""Compressed Sparse Fiber storage and its fiber-vectorized TTMc kernels."""

import numpy as np
import pytest

from repro.core import HOOIOptions, SparseTensor, hooi, ttmc_matricized
from repro.core.symbolic import symbolic_ttmc
from repro.data import power_law_sparse_tensor
from repro.engine import (
    CSFBackend,
    HOOIEngine,
    ThreadedCSFBackend,
    WorkspacePool,
    resolve_ttmc_backend,
)
from repro.parallel.parallel_for import ParallelConfig
from repro.sparse import (
    CSFTensor,
    CSFTensorSet,
    csf_ttmc_compact,
    csf_ttmc_matricized,
    default_mode_order,
    memory_report,
    rooted_mode_order,
)
from repro.util.linalg import random_orthonormal


def make_factors(shape, rank=3, seed=0):
    return [
        random_orthonormal(size, min(rank, size), seed=seed + 7 * n)
        for n, size in enumerate(shape)
    ]


class TestModeOrders:
    def test_default_is_shortest_first(self):
        assert default_mode_order((50, 10, 30)) == (1, 2, 0)

    def test_default_breaks_ties_by_mode(self):
        assert default_mode_order((20, 20, 10)) == (2, 0, 1)

    def test_rooted_puts_root_first_rest_shortest(self):
        assert rooted_mode_order((50, 10, 30), 0) == (0, 1, 2)
        assert rooted_mode_order((50, 10, 30), 2) == (2, 1, 0)

    def test_rooted_rejects_bad_mode(self):
        with pytest.raises(Exception):
            rooted_mode_order((5, 5), 2)

    def test_bad_mode_order_rejected(self, small_tensor_3d):
        with pytest.raises(ValueError, match="permutation"):
            CSFTensor(small_tensor_3d, mode_order=(0, 1, 1))


class TestConstruction:
    def test_level_sizes_shrink_towards_root(self, small_tensor_3d):
        csf = CSFTensor(small_tensor_3d)
        sizes = [csf.num_fibers(level) for level in range(csf.order)]
        assert sizes[-1] == small_tensor_3d.nnz
        assert all(a <= b for a, b in zip(sizes, sizes[1:]))

    def test_root_fids_sorted_unique(self, small_tensor_3d):
        csf = CSFTensor(small_tensor_3d)
        roots = csf.fids[0]
        assert (np.diff(roots) > 0).all()

    def test_fptr_partitions_every_level(self, small_tensor_4d):
        csf = CSFTensor(small_tensor_4d)
        for level in range(csf.order - 1):
            fptr = csf.fptr[level]
            assert fptr[0] == 0
            assert fptr[-1] == csf.num_fibers(level + 1)
            assert (np.diff(fptr) >= 1).all()  # no empty fibers

    def test_node_spans_sum_to_nnz(self, small_tensor_4d):
        csf = CSFTensor(small_tensor_4d)
        for level in range(csf.order):
            assert csf.node_spans(level).sum() == small_tensor_4d.nnz

    def test_target_rows_match_symbolic(self, small_tensor_3d):
        for mode in range(3):
            shared = CSFTensor(small_tensor_3d)
            rooted = CSFTensor(
                small_tensor_3d,
                mode_order=rooted_mode_order(small_tensor_3d.shape, mode),
            )
            expected = symbolic_ttmc(small_tensor_3d, mode).rows
            np.testing.assert_array_equal(shared.target_rows(mode), expected)
            np.testing.assert_array_equal(rooted.target_rows(mode), expected)

    def test_empty_tensor(self):
        csf = CSFTensor(SparseTensor.empty((4, 5, 6)))
        assert csf.nnz == 0
        assert all(csf.num_fibers(level) == 0 for level in range(3))
        assert csf.to_coo().nnz == 0

    def test_preserves_dtype(self, small_tensor_3d):
        csf = CSFTensor(small_tensor_3d.astype("float32"))
        assert csf.dtype == np.float32


class TestRoundTrip:
    def test_roundtrip_all_orders(self, small_tensor_3d, small_tensor_4d):
        for tensor in (small_tensor_3d, small_tensor_4d):
            for mode in range(tensor.order):
                order = rooted_mode_order(tensor.shape, mode)
                back = CSFTensor(tensor, mode_order=order).to_coo()
                assert back.shape == tensor.shape
                assert back.allclose(tensor, rtol=0, atol=0)

    def test_roundtrip_keeps_duplicates(self):
        indices = np.array([[1, 2], [1, 2], [0, 1]])
        values = np.array([1.0, 2.0, 3.0])
        tensor = SparseTensor(indices, values, (3, 4))
        csf = CSFTensor(tensor)
        assert csf.nnz == 3  # duplicates preserved structurally
        assert csf.to_coo().allclose(tensor)  # allclose deduplicates both

    def test_roundtrip_matrix(self):
        tensor = SparseTensor(
            np.array([[0, 3], [2, 1], [2, 3]]), np.array([1.0, -2.0, 0.5]), (3, 4)
        )
        back = CSFTensor(tensor, mode_order=(1, 0)).to_coo()
        np.testing.assert_allclose(back.to_dense(), tensor.to_dense())


class TestMemoryBytes:
    def test_coo_memory_bytes_exact(self):
        tensor = SparseTensor(
            np.array([[0, 1, 2], [1, 1, 0]]), np.array([1.0, 2.0]), (2, 3, 4)
        )
        assert tensor.memory_bytes() == 2 * 3 * 8 + 2 * 8

    def test_csf_memory_bytes_exact(self):
        # Two nonzeros sharing the root fiber: 1 + 2 + 2 fids, 2 + 3 fptr
        # entries, 2 values.
        tensor = SparseTensor(
            np.array([[0, 1, 2], [0, 1, 3]]), np.array([1.0, 2.0]), (2, 3, 4)
        )
        csf = CSFTensor(tensor, mode_order=(0, 1, 2))
        assert [len(f) for f in csf.fids] == [1, 1, 2]
        assert csf.memory_bytes() == (1 + 1 + 2) * 8 + (2 + 2) * 8 + 2 * 8

    def test_shared_tree_compresses_power_law(self):
        tensor = power_law_sparse_tensor((60, 50, 40), 8000, exponents=0.9, seed=2)
        report = memory_report(tensor, CSFTensorSet.shared_tree(tensor))
        assert report["coo_bytes"] == tensor.memory_bytes()
        assert report["ratio"] < 1.0  # merged prefixes beat flat COO

    def test_per_mode_set_counts_all_trees(self, small_tensor_3d):
        per_mode = CSFTensorSet.per_mode(small_tensor_3d)
        assert per_mode.memory_bytes() == sum(
            per_mode.tree_for(m).memory_bytes() for m in range(3)
        )

    def test_shared_set_counts_tree_once(self, small_tensor_3d):
        shared = CSFTensorSet.shared_tree(small_tensor_3d)
        assert shared.memory_bytes() == shared.tree_for(0).memory_bytes()
        assert len(shared.trees) == 1


class TestTTMcParity:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_shared_tree_matches_coo(self, small_tensor_3d, mode):
        factors = make_factors(small_tensor_3d.shape)
        csf = CSFTensor(small_tensor_3d)
        expected = ttmc_matricized(small_tensor_3d, factors, mode)
        result = csf_ttmc_matricized(csf, factors, mode)
        assert result.shape == expected.shape
        np.testing.assert_allclose(result, expected, atol=1e-10)

    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_rooted_tree_matches_coo_4d(self, small_tensor_4d, mode):
        factors = make_factors(small_tensor_4d.shape)
        csf = CSFTensor(
            small_tensor_4d,
            mode_order=rooted_mode_order(small_tensor_4d.shape, mode),
        )
        expected = ttmc_matricized(small_tensor_4d, factors, mode)
        np.testing.assert_allclose(
            csf_ttmc_matricized(csf, factors, mode), expected, atol=1e-10
        )

    def test_distinct_ranks_column_order(self, small_tensor_4d):
        """Unequal ranks catch any column-permutation mistake."""
        rng = np.random.default_rng(5)
        factors = [
            rng.standard_normal((size, rank))
            for size, rank in zip(small_tensor_4d.shape, (2, 3, 4, 5))
        ]
        csf = CSFTensor(small_tensor_4d)
        for mode in range(4):
            expected = ttmc_matricized(small_tensor_4d, factors, mode)
            np.testing.assert_allclose(
                csf_ttmc_matricized(csf, factors, mode), expected, atol=1e-10
            )

    def test_threaded_slabs_match(self, small_tensor_4d):
        factors = make_factors(small_tensor_4d.shape)
        config = ParallelConfig(num_threads=3, schedule="static")
        for mode in range(4):
            csf = CSFTensor(
                small_tensor_4d,
                mode_order=rooted_mode_order(small_tensor_4d.shape, mode),
            )
            expected = ttmc_matricized(small_tensor_4d, factors, mode)
            np.testing.assert_allclose(
                csf_ttmc_matricized(csf, factors, mode, config=config),
                expected,
                atol=1e-10,
            )

    def test_float32_stays_float32(self, small_tensor_3d):
        tensor = small_tensor_3d.astype("float32")
        factors = [np.asarray(f, dtype=np.float32) for f in make_factors(tensor.shape)]
        result = csf_ttmc_matricized(CSFTensor(tensor), factors, 0)
        expected = ttmc_matricized(tensor, factors, 0)
        assert result.dtype == np.float32
        np.testing.assert_allclose(result, expected, atol=1e-3)

    def test_mixed_dtype_promotes(self, small_tensor_3d):
        tensor = small_tensor_3d.astype("float32")
        factors = make_factors(tensor.shape)  # float64
        assert csf_ttmc_matricized(CSFTensor(tensor), factors, 1).dtype == np.float64

    def test_out_and_zero_policies(self, small_tensor_3d):
        factors = make_factors(small_tensor_3d.shape)
        csf = CSFTensor(small_tensor_3d)
        expected = ttmc_matricized(small_tensor_3d, factors, 0)
        out = np.full_like(expected, 7.0)
        result = csf_ttmc_matricized(csf, factors, 0, out=out, zero="full")
        assert result is out
        np.testing.assert_allclose(out, expected, atol=1e-10)
        # zero="none" leaves untouched rows alone
        out2 = np.zeros_like(expected)
        csf_ttmc_matricized(csf, factors, 0, out=out2, zero="none")
        np.testing.assert_allclose(out2, expected, atol=1e-10)
        with pytest.raises(ValueError, match="zero"):
            csf_ttmc_matricized(csf, factors, 0, out=out, zero="sometimes")
        with pytest.raises(ValueError, match="shape"):
            csf_ttmc_matricized(csf, factors, 0, out=out[:, :-1])

    def test_compact_form(self, small_tensor_3d):
        factors = make_factors(small_tensor_3d.shape)
        csf = CSFTensor(small_tensor_3d)
        rows, block = csf_ttmc_compact(csf, factors, 1)
        expected = ttmc_matricized(small_tensor_3d, factors, 1)
        np.testing.assert_array_equal(rows, symbolic_ttmc(small_tensor_3d, 1).rows)
        np.testing.assert_allclose(block, expected[rows], atol=1e-10)

    def test_empty_tensor_ttmc(self):
        tensor = SparseTensor.empty((4, 5, 6))
        factors = make_factors(tensor.shape, rank=2)
        result = csf_ttmc_matricized(CSFTensor(tensor), factors, 0)
        assert result.shape == (4, 2 * 2)
        assert not result.any()

    def test_workspace_steady_state(self, small_tensor_3d):
        factors = make_factors(small_tensor_3d.shape)
        csf = CSFTensor(small_tensor_3d)
        pool = WorkspacePool()
        csf_ttmc_matricized(csf, factors, 0, workspace=pool)
        allocations = pool.allocations
        csf_ttmc_matricized(csf, factors, 0, workspace=pool)
        assert pool.allocations == allocations

    def test_workspace_reused_across_tree_rebuilds(self, small_tensor_3d):
        """A shared pool must not grow when trees are rebuilt per run.

        The engine rebuilds its CSFTensorSet in every ``prepare``, so the
        scratch tags are keyed by mode order (not tree identity): a fresh
        tree with the same ordering must hit the pooled buffers of the
        previous run.
        """
        factors = make_factors(small_tensor_3d.shape)
        pool = WorkspacePool()
        csf_ttmc_matricized(CSFTensor(small_tensor_3d), factors, 0, workspace=pool)
        allocations = pool.allocations
        buffers = pool.num_buffers
        csf_ttmc_matricized(CSFTensor(small_tensor_3d), factors, 0, workspace=pool)
        assert pool.allocations == allocations
        assert pool.num_buffers == buffers

    def test_engine_reruns_share_workspace(self, small_tensor_3d):
        """Back-to-back hooi runs on one pool: zero second-run allocations."""
        pool = WorkspacePool()
        opts = HOOIOptions(max_iterations=2, seed=0, tensor_format="csf")
        hooi(small_tensor_3d, (3, 3, 2), opts, workspace=pool)
        allocations = pool.allocations
        hooi(small_tensor_3d, (3, 3, 2), opts, workspace=pool)
        assert pool.allocations == allocations


class TestCSFBackends:
    RANKS = (3, 3, 2)

    def run(self, tensor, backend, **options):
        opts = HOOIOptions(max_iterations=3, seed=0, **options)
        return HOOIEngine(tensor, self.RANKS, opts, backend=backend).run()

    def test_sequential_backend_parity(self, small_tensor_3d):
        reference = hooi(
            small_tensor_3d, self.RANKS, HOOIOptions(max_iterations=3, seed=0)
        )
        for trees in ("per-mode", "shared"):
            result = self.run(small_tensor_3d, CSFBackend(trees=trees))
            np.testing.assert_allclose(
                result.fit_history, reference.fit_history, atol=1e-10
            )
            for ours, ref in zip(
                result.decomposition.factors, reference.decomposition.factors
            ):
                np.testing.assert_allclose(ours, ref, atol=1e-10)

    def test_threaded_backend_parity(self, small_tensor_3d):
        reference = hooi(
            small_tensor_3d, self.RANKS, HOOIOptions(max_iterations=3, seed=0)
        )
        backend = ThreadedCSFBackend(ParallelConfig(num_threads=2))
        result = self.run(small_tensor_3d, backend)
        np.testing.assert_allclose(
            result.fit_history, reference.fit_history, atol=1e-10
        )

    def test_bad_tree_policy_rejected(self):
        with pytest.raises(ValueError, match="tree policy"):
            CSFBackend(trees="forest")

    def test_compute_ttmc_rows_subset(self, small_tensor_3d):
        backend = CSFBackend()
        opts = HOOIOptions(max_iterations=1, seed=0)
        eng = HOOIEngine(small_tensor_3d, self.RANKS, opts, backend=backend)
        eng.run()
        rows = symbolic_ttmc(eng.tensor, 0).rows[::2]
        block = backend.compute_ttmc_rows(eng, 0, rows)
        full = ttmc_matricized(eng.tensor, eng.factors, 0)
        np.testing.assert_allclose(block, full[rows], atol=1e-10)

    def test_compute_ttmc_rows_missing_rows_zero(self, small_tensor_3d):
        backend = CSFBackend()
        opts = HOOIOptions(max_iterations=1, seed=0)
        eng = HOOIEngine(small_tensor_3d, self.RANKS, opts, backend=backend)
        eng.run()
        empty_rows = np.setdiff1d(
            np.arange(small_tensor_3d.shape[0]),
            symbolic_ttmc(eng.tensor, 0).rows,
        )
        if empty_rows.size:
            block = backend.compute_ttmc_rows(eng, 0, empty_rows[:2])
            assert not block.any()


class TestResolver:
    def test_csf_format_resolves_csf_backends(self):
        assert isinstance(
            resolve_ttmc_backend(HOOIOptions(tensor_format="csf")), CSFBackend
        )
        threaded = resolve_ttmc_backend(
            HOOIOptions(tensor_format="csf", execution="thread", num_workers=2)
        )
        assert isinstance(threaded, ThreadedCSFBackend)
        assert threaded.config.num_threads == 2

    def test_coo_format_unchanged(self):
        backend = resolve_ttmc_backend(HOOIOptions())
        assert not isinstance(backend, CSFBackend)

    def test_threaded_forces_per_mode_trees(self):
        assert ThreadedCSFBackend().trees == "per-mode"
