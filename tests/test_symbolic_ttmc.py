"""Unit tests for the symbolic TTMc structures and the numeric TTMc kernels."""

import numpy as np
import pytest

from repro.core import (
    SparseTensor,
    SymbolicTTMc,
    dense_ttm_chain,
    symbolic_ttmc,
    ttmc_contributions,
    ttmc_flops,
    ttmc_matricized,
    unfold,
)
from repro.core.ttmc import default_block_size, gather_ranges


class TestSymbolic:
    def test_rows_are_sorted_unique(self, small_tensor_3d):
        for mode in range(3):
            sym = symbolic_ttmc(small_tensor_3d, mode)
            assert np.all(np.diff(sym.rows) > 0)
            assert set(sym.rows) == set(small_tensor_3d.nonempty_rows(mode))

    def test_perm_covers_all_nonzeros(self, small_tensor_3d):
        sym = symbolic_ttmc(small_tensor_3d, 0)
        assert sorted(sym.perm.tolist()) == list(range(small_tensor_3d.nnz))

    def test_update_lists_group_by_row(self, small_tensor_3d):
        sym = symbolic_ttmc(small_tensor_3d, 1)
        for r, row in enumerate(sym.rows):
            positions = sym.perm[sym.rowptr[r]: sym.rowptr[r + 1]]
            assert np.all(small_tensor_3d.indices[positions, 1] == row)

    def test_update_list_lookup(self, small_tensor_3d):
        sym = symbolic_ttmc(small_tensor_3d, 0)
        row = int(sym.rows[0])
        ul = sym.update_list(row)
        assert np.all(small_tensor_3d.indices[ul, 0] == row)

    def test_update_list_missing_row_empty(self, small_tensor_3d):
        sym = symbolic_ttmc(small_tensor_3d, 0)
        all_rows = set(range(small_tensor_3d.shape[0]))
        missing = sorted(all_rows - set(sym.rows.tolist()))
        if missing:
            assert sym.update_list(missing[0]).size == 0

    def test_row_sizes_sum_to_nnz(self, small_tensor_3d):
        sym = symbolic_ttmc(small_tensor_3d, 2)
        assert sym.row_sizes().sum() == small_tensor_3d.nnz

    def test_empty_tensor(self):
        t = SparseTensor.empty((5, 5))
        sym = symbolic_ttmc(t, 0)
        assert sym.num_rows == 0 and sym.nnz == 0

    def test_all_modes_container(self, small_tensor_4d):
        sym = SymbolicTTMc(small_tensor_4d)
        assert sym.modes() == [0, 1, 2, 3]
        assert 2 in sym
        with pytest.raises(ValueError):
            sym[7]

    def test_subset_of_modes(self, small_tensor_3d):
        sym = SymbolicTTMc(small_tensor_3d, modes=[1])
        assert 1 in sym and 0 not in sym
        with pytest.raises(KeyError):
            sym[0]


class TestNumericTTMc:
    def test_matches_dense_oracle_3d(self, small_tensor_3d, factors_3d):
        dense = small_tensor_3d.to_dense()
        for mode in range(3):
            expected = unfold(
                dense_ttm_chain(dense, factors_3d, skip=mode, transpose=True), mode
            )
            actual = ttmc_matricized(small_tensor_3d, factors_3d, mode)
            assert np.allclose(actual, expected)

    def test_matches_dense_oracle_4d(self, small_tensor_4d, factors_4d):
        dense = small_tensor_4d.to_dense()
        for mode in range(4):
            expected = unfold(
                dense_ttm_chain(dense, factors_4d, skip=mode, transpose=True), mode
            )
            actual = ttmc_matricized(small_tensor_4d, factors_4d, mode)
            assert np.allclose(actual, expected)

    def test_reusing_symbolic_gives_same_result(self, small_tensor_3d, factors_3d):
        sym = symbolic_ttmc(small_tensor_3d, 1)
        a = ttmc_matricized(small_tensor_3d, factors_3d, 1, symbolic=sym)
        b = ttmc_matricized(small_tensor_3d, factors_3d, 1)
        assert np.allclose(a, b)

    def test_small_block_size_same_result(self, small_tensor_3d, factors_3d):
        a = ttmc_matricized(small_tensor_3d, factors_3d, 0)
        b = ttmc_matricized(small_tensor_3d, factors_3d, 0, block_nnz=7)
        assert np.allclose(a, b)

    def test_row_subset(self, small_tensor_3d, factors_3d):
        full = ttmc_matricized(small_tensor_3d, factors_3d, 0)
        rows = small_tensor_3d.nonempty_rows(0)[::2]
        partial = ttmc_matricized(small_tensor_3d, factors_3d, 0, rows=rows)
        assert np.allclose(partial[rows], full[rows])
        others = np.setdiff1d(np.arange(small_tensor_3d.shape[0]), rows)
        assert np.allclose(partial[others], 0.0)

    def test_out_buffer_reuse(self, small_tensor_3d, factors_3d):
        width = factors_3d[1].shape[1] * factors_3d[2].shape[1]
        out = np.ones((small_tensor_3d.shape[0], width))
        result = ttmc_matricized(small_tensor_3d, factors_3d, 0, out=out)
        assert result is out
        assert np.allclose(out, ttmc_matricized(small_tensor_3d, factors_3d, 0))

    def test_out_wrong_shape_raises(self, small_tensor_3d, factors_3d):
        with pytest.raises(ValueError):
            ttmc_matricized(
                small_tensor_3d, factors_3d, 0, out=np.zeros((2, 2))
            )

    def test_empty_tensor_gives_zeros(self, factors_3d):
        t = SparseTensor.empty((20, 15, 12))
        out = ttmc_matricized(t, factors_3d, 0)
        assert out.shape == (20, 12)
        assert np.allclose(out, 0.0)

    def test_missing_factor_raises(self, small_tensor_3d, factors_3d):
        bad = [factors_3d[0], None, factors_3d[2]]
        with pytest.raises(ValueError):
            ttmc_matricized(small_tensor_3d, bad, 0)

    def test_factor_for_target_mode_ignored(self, small_tensor_3d, factors_3d):
        with_none = [None, factors_3d[1], factors_3d[2]]
        assert np.allclose(
            ttmc_matricized(small_tensor_3d, with_none, 0),
            ttmc_matricized(small_tensor_3d, factors_3d, 0),
        )

    def test_wrong_factor_rows_raises(self, small_tensor_3d, factors_3d):
        bad = list(factors_3d)
        bad[1] = bad[1][:-1]
        with pytest.raises(ValueError):
            ttmc_matricized(small_tensor_3d, bad, 0)

    def test_mismatched_symbolic_raises(self, small_tensor_3d, factors_3d):
        sym = symbolic_ttmc(small_tensor_3d, 0)
        with pytest.raises(ValueError):
            ttmc_matricized(small_tensor_3d, factors_3d, 1, symbolic=sym)

    def test_contributions_sum_to_rows(self, small_tensor_3d, factors_3d):
        mode = 0
        contributions = ttmc_contributions(
            small_tensor_3d, factors_3d, mode,
            np.arange(small_tensor_3d.nnz),
        )
        full = ttmc_matricized(small_tensor_3d, factors_3d, mode)
        manual = np.zeros_like(full)
        np.add.at(manual, small_tensor_3d.indices[:, mode], contributions)
        assert np.allclose(manual, full)


class TestHelpers:
    def test_gather_ranges(self):
        src = np.arange(20)
        starts = np.array([2, 10, 15])
        counts = np.array([3, 0, 2])
        assert np.array_equal(gather_ranges(src, starts, counts), [2, 3, 4, 15, 16])

    def test_gather_ranges_empty(self):
        out = gather_ranges(np.arange(5), np.array([], dtype=int), np.array([], dtype=int))
        assert out.size == 0

    def test_default_block_size_bounds(self):
        assert default_block_size(1) >= 1024
        assert default_block_size(10**9) >= 1024  # never collapses to zero
        assert default_block_size(100) <= 65536

    def test_ttmc_flops_positive_and_monotonic(self):
        a = ttmc_flops(1000, (10, 10, 10), 0)
        b = ttmc_flops(2000, (10, 10, 10), 0)
        assert 0 < a < b
        assert b == 2 * a
