"""Tests for the zero-copy multiprocess execution backend.

Contract: ``execution="process"`` matches the sequential backend to 1e-10
(float64) for both ``ttmc_strategy`` values, respects the float32 dtype
policy, degenerates cleanly at ``num_workers=1``, and — crucially for a
shared-memory subsystem — never leaks segments: clean runs, double
teardown and worker crashes must all leave ``/dev/shm`` empty and the
resource tracker silent.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import HOOIOptions, hooi
from repro.core.symbolic import symbolic_ttmc
from repro.core.ttmc import ttmc_matricized
from repro.engine import ProcessBackend, ProcessDimTreeBackend, resolve_ttmc_backend
from repro.parallel import (
    HOOIProcessPool,
    ProcessConfig,
    ShmArena,
    ShmView,
    WorkerCrashError,
)
from repro.util.linalg import random_orthonormal

RANKS = 5


def _leftover_segments(names):
    """Segment names still present in /dev/shm (empty off-Linux)."""
    base = Path("/dev/shm")
    if not base.exists():
        return []
    return [name for name in names if (base / name).exists()]


def _per_mode_pool(tensor, num_workers=2, **kwargs):
    symbolic = {mode: symbolic_ttmc(tensor, mode) for mode in range(tensor.order)}
    factors = [
        random_orthonormal(s, RANKS, seed=i) for i, s in enumerate(tensor.shape)
    ]
    pool = HOOIProcessPool.for_per_mode(
        tensor,
        symbolic,
        factors,
        [RANKS] * tensor.order,
        np.float64,
        config=ProcessConfig(num_workers=num_workers, **kwargs),
    )
    return pool, factors, symbolic


class TestProcessMatchesSequential:
    @pytest.mark.parametrize("strategy", ["per-mode", "dimtree"])
    def test_float64_matches_to_1e10(self, medium_tensor_3d, strategy):
        options = dict(max_iterations=3, init="hosvd", seed=0,
                       ttmc_strategy=strategy)
        seq = hooi(medium_tensor_3d, RANKS, HOOIOptions(**options))
        proc = hooi(
            medium_tensor_3d, RANKS,
            HOOIOptions(**options, execution="process", num_workers=2),
        )
        assert np.allclose(seq.fit_history, proc.fit_history, atol=1e-10)
        for a, b in zip(
            seq.decomposition.factors, proc.decomposition.factors
        ):
            assert np.allclose(a, b, atol=1e-10)
        assert np.allclose(
            seq.decomposition.core, proc.decomposition.core, atol=1e-10
        )

    def test_four_mode_dimtree(self, small_tensor_4d):
        options = dict(max_iterations=2, init="hosvd", seed=0,
                       ttmc_strategy="dimtree")
        seq = hooi(small_tensor_4d, (3, 3, 2, 2), HOOIOptions(**options))
        proc = hooi(
            small_tensor_4d, (3, 3, 2, 2),
            HOOIOptions(**options, execution="process", num_workers=3),
        )
        assert np.allclose(seq.fit_history, proc.fit_history, atol=1e-10)

    def test_pool_ttmc_matches_kernel_after_factor_refresh(self, medium_tensor_3d):
        pool, factors, symbolic = _per_mode_pool(medium_tensor_3d)
        with pool:
            for mode in range(medium_tensor_3d.order):
                expected = ttmc_matricized(
                    medium_tensor_3d, factors, mode, symbolic=symbolic[mode]
                )
                assert np.allclose(pool.ttmc(mode), expected, atol=1e-12)
            # Broadcast a refreshed factor and verify workers pick it up.
            new_factor = random_orthonormal(
                medium_tensor_3d.shape[0], RANKS, seed=99
            )
            pool.write_factor(0, new_factor)
            factors[0] = new_factor
            expected = ttmc_matricized(
                medium_tensor_3d, factors, 1, symbolic=symbolic[1]
            )
            assert np.allclose(pool.ttmc(1), expected, atol=1e-12)


class TestDtypePolicy:
    def test_float32_policy_respected(self, medium_tensor_3d):
        options = dict(max_iterations=3, init="random", seed=0)
        f64 = hooi(
            medium_tensor_3d, RANKS,
            HOOIOptions(**options, execution="process", num_workers=2),
        )
        f32 = hooi(
            medium_tensor_3d, RANKS,
            HOOIOptions(**options, dtype="float32",
                        execution="process", num_workers=2),
        )
        assert f32.decomposition.core.dtype == np.float32
        assert all(f.dtype == np.float32 for f in f32.decomposition.factors)
        assert abs(f32.fit - f64.fit) < 1e-3


class TestDegenerateAndResolver:
    def test_num_workers_one_matches_sequential_exactly(self, small_tensor_3d):
        options = dict(max_iterations=3, init="hosvd", seed=0)
        seq = hooi(small_tensor_3d, 3, HOOIOptions(**options))
        proc = hooi(
            small_tensor_3d, 3,
            HOOIOptions(**options, execution="process", num_workers=1),
        )
        assert seq.fit_history == proc.fit_history
        for a, b in zip(seq.decomposition.factors, proc.decomposition.factors):
            assert np.array_equal(a, b)

    def test_num_workers_one_spawns_no_pool(self, small_tensor_3d):
        backend = resolve_ttmc_backend(
            HOOIOptions(execution="process", num_workers=1)
        )
        assert isinstance(backend, ProcessBackend)
        hooi(small_tensor_3d, 3, HOOIOptions(
            max_iterations=1, execution="process", num_workers=1))
        assert backend.pool is None

    def test_resolver_picks_process_backends(self):
        assert isinstance(
            resolve_ttmc_backend(HOOIOptions(execution="process", num_workers=2)),
            ProcessBackend,
        )
        assert isinstance(
            resolve_ttmc_backend(
                HOOIOptions(execution="process", num_workers=2,
                            ttmc_strategy="dimtree")
            ),
            ProcessDimTreeBackend,
        )

    def test_thread_execution_option(self, small_tensor_3d):
        options = dict(max_iterations=3, init="hosvd", seed=0)
        seq = hooi(small_tensor_3d, 3, HOOIOptions(**options))
        threaded = hooi(
            small_tensor_3d, 3,
            HOOIOptions(**options, execution="thread", num_workers=2),
        )
        assert np.allclose(seq.fit_history, threaded.fit_history, atol=1e-9)

    def test_unknown_execution_rejected(self, small_tensor_3d):
        with pytest.raises(ValueError, match="execution"):
            hooi(small_tensor_3d, 3, HOOIOptions(execution="gpu"))

    def test_distributed_rejects_process_execution(self, small_tensor_3d):
        # Hybrid ranks may run threads (and do, since the hybrid-grain
        # work), but a worker-process pool per simulated rank would
        # oversubscribe the node — rejected with an actionable message.
        from repro.distributed import distributed_hooi
        from repro.partition import make_partition

        partition = make_partition(small_tensor_3d, 2, "coarse-bl")
        with pytest.raises(ValueError, match="oversubscribe"):
            distributed_hooi(
                small_tensor_3d, 3, partition,
                HOOIOptions(max_iterations=1, execution="process"),
            )


class TestTeardownAndLeaks:
    def test_engine_run_leaves_no_segments(self, small_tensor_3d):
        names_seen = []
        original_prepare = ProcessBackend.prepare

        def spy(self, eng):
            original_prepare(self, eng)
            if self.pool is not None:
                names_seen.extend(self.pool.segment_names)

        ProcessBackend.prepare = spy
        try:
            hooi(small_tensor_3d, 3, HOOIOptions(
                max_iterations=2, execution="process", num_workers=2))
        finally:
            ProcessBackend.prepare = original_prepare
        assert names_seen, "the run should have created shared segments"
        assert _leftover_segments(names_seen) == []

    def test_double_teardown_is_clean(self, medium_tensor_3d):
        pool, _, _ = _per_mode_pool(medium_tensor_3d)
        names = pool.segment_names
        pool.close()
        pool.close()  # second teardown must be a no-op, not an error
        assert _leftover_segments(names) == []
        with pytest.raises(RuntimeError):
            pool.ttmc(0)

    def test_worker_crash_raises_and_leaves_no_segments(self, medium_tensor_3d):
        pool, _, _ = _per_mode_pool(medium_tensor_3d, num_workers=2)
        names = pool.segment_names
        victim = pool.workers[0]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        assert not victim.is_alive()
        with pytest.raises(WorkerCrashError):
            pool.ttmc(0)
        pool.close()
        assert _leftover_segments(names) == []

    def test_arena_lifecycle_idempotent(self):
        arena = ShmArena()
        arena.put("a", np.arange(6.0).reshape(2, 3))
        names = arena.segment_names
        view = ShmView(arena.specs)
        assert np.array_equal(view["a"], np.arange(6.0).reshape(2, 3))
        view.close()
        view.close()
        arena.close()
        arena.unlink()
        arena.unlink()
        assert _leftover_segments(names) == []

    def test_resource_tracker_stays_silent(self, tmp_path):
        """A full spawn-mode run must emit zero resource-tracker noise.

        The tracker prints 'leaked shared_memory' / KeyError complaints from
        a helper process at interpreter exit, so they are only observable
        from outside — run a pool cycle in a subprocess and inspect stderr.
        """
        script = tmp_path / "run_pool.py"
        script.write_text(
            "import numpy as np\n"
            "from repro.core import HOOIOptions, SparseTensor, hooi\n"
            "if __name__ == '__main__':\n"
            "    rng = np.random.default_rng(0)\n"
            "    idx = rng.integers(0, 12, size=(200, 3))\n"
            "    t = SparseTensor(idx, rng.standard_normal(200), (12, 12, 12),\n"
            "                     sum_duplicates=True)\n"
            "    r = hooi(t, 3, HOOIOptions(max_iterations=2,\n"
            "             execution='process', num_workers=2))\n"
            "    assert np.isfinite(r.fit)\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["REPRO_PROCESS_START_METHOD"] = "spawn"
        result = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, env=env, timeout=300,
        )
        assert result.returncode == 0, result.stderr
        assert "leaked shared_memory" not in result.stderr
        assert "resource_tracker" not in result.stderr


class TestGuards:
    @pytest.mark.parametrize("strategy", ["per-mode", "dimtree"])
    def test_rank_exceeding_width_fails_fast(self, small_tensor_3d, strategy):
        # Mode-0 rank 5 > W_0 = 2*2: the TRSVD would shrink the factor and
        # the fixed shared factor segments could not absorb it.  Both
        # strategies must fail at pool construction, not mid-run.
        with pytest.raises(ValueError, match="fixed factor shapes"):
            hooi(small_tensor_3d, (5, 2, 2), HOOIOptions(
                max_iterations=1, execution="process", num_workers=2,
                ttmc_strategy=strategy))

    def test_write_factor_shape_mismatch_rejected(self, medium_tensor_3d):
        pool, _, _ = _per_mode_pool(medium_tensor_3d)
        with pool:
            with pytest.raises(ValueError, match="fixed factor shapes"):
                pool.write_factor(
                    0, np.zeros((medium_tensor_3d.shape[0], RANKS + 1))
                )
