"""Unit tests for repro.util.linalg and repro.util.timing."""

import time

import numpy as np
import pytest

from repro.util.linalg import (
    gram_leading_eigvecs,
    normalize_columns,
    orthonormalize,
    random_orthonormal,
)
from repro.util.timing import Stopwatch, TimingBreakdown


class TestOrthonormalize:
    def test_columns_are_orthonormal(self, rng):
        q = orthonormalize(rng.standard_normal((30, 5)))
        assert np.allclose(q.T @ q, np.eye(5), atol=1e-10)

    def test_preserves_column_space(self, rng):
        a = rng.standard_normal((20, 3))
        q = orthonormalize(a)
        # Projection of a onto span(q) should equal a.
        assert np.allclose(q @ (q.T @ a), a, atol=1e-10)

    def test_rank_deficient_input_still_orthonormal(self, rng):
        a = rng.standard_normal((15, 2))
        deficient = np.hstack([a, a[:, :1]])  # third column is a duplicate
        q = orthonormalize(deficient)
        assert np.allclose(q.T @ q, np.eye(3), atol=1e-8)

    def test_too_many_columns_raises(self):
        with pytest.raises(ValueError):
            orthonormalize(np.ones((3, 5)))

    def test_non_2d_raises(self):
        with pytest.raises(ValueError):
            orthonormalize(np.ones(4))


class TestRandomOrthonormal:
    def test_shape_and_orthonormality(self):
        q = random_orthonormal(12, 4, seed=0)
        assert q.shape == (12, 4)
        assert np.allclose(q.T @ q, np.eye(4), atol=1e-10)

    def test_deterministic_with_seed(self):
        assert np.allclose(random_orthonormal(8, 3, seed=5), random_orthonormal(8, 3, seed=5))

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            random_orthonormal(3, 4)


class TestNormalizeColumns:
    def test_unit_norms(self, rng):
        m, norms = normalize_columns(rng.standard_normal((10, 4)))
        assert np.allclose(np.linalg.norm(m, axis=0), 1.0)
        assert norms.shape == (4,)

    def test_zero_column_untouched(self):
        a = np.zeros((5, 2))
        a[:, 0] = 3.0
        m, norms = normalize_columns(a)
        assert np.allclose(m[:, 1], 0.0)
        assert norms[1] == 1.0

    def test_reconstruction(self, rng):
        a = rng.standard_normal((6, 3))
        m, norms = normalize_columns(a)
        assert np.allclose(m * norms, a)


class TestGramLeadingEigvecs:
    def test_matches_svd_subspace(self, rng):
        a = rng.standard_normal((15, 40))
        lead = gram_leading_eigvecs(a, 3)
        u, _, _ = np.linalg.svd(a, full_matrices=False)
        p1 = lead @ lead.T
        p2 = u[:, :3] @ u[:, :3].T
        assert np.allclose(p1, p2, atol=1e-8)

    def test_rank_clipped(self, rng):
        a = rng.standard_normal((4, 10))
        assert gram_leading_eigvecs(a, 10).shape == (4, 4)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            gram_leading_eigvecs(np.ones((3, 3)), 0)


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            pass
        sw.reset()
        assert sw.elapsed == 0.0


class TestTimingBreakdown:
    def test_add_and_total(self):
        tb = TimingBreakdown()
        tb.add("a", 1.0)
        tb.add("b", 3.0)
        tb.add("a", 1.0)
        assert tb["a"] == 2.0
        assert tb.total() == 5.0

    def test_fractions_sum_to_one(self):
        tb = TimingBreakdown()
        tb.add("x", 2.0)
        tb.add("y", 6.0)
        fractions = tb.fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-12
        assert abs(fractions["y"] - 0.75) < 1e-12

    def test_empty_fractions(self):
        assert TimingBreakdown().fractions() == {}

    def test_context_manager(self):
        tb = TimingBreakdown()
        with tb.time("phase"):
            time.sleep(0.005)
        assert tb["phase"] > 0.0

    def test_merge(self):
        a = TimingBreakdown()
        a.add("x", 1.0)
        b = TimingBreakdown()
        b.add("x", 2.0)
        b.add("y", 1.0)
        a.merge(b)
        assert a["x"] == 3.0 and a["y"] == 1.0

    def test_percentages(self):
        tb = TimingBreakdown()
        tb.add("x", 1.0)
        tb.add("y", 1.0)
        assert abs(tb.as_percentages()["x"] - 50.0) < 1e-12
