"""End-to-end integration tests across subsystems.

These exercise the paths a user of the library would follow: generate or load
a tensor, decompose it sequentially, with threads, and with the simulated
distributed runtime, and check that all three agree and that the quality
metrics behave as the paper describes.
"""

import numpy as np
import pytest

from repro.baselines import met_hooi
from repro.core import HOOIOptions, SparseTensor, hooi, tucker_fit
from repro.data import (
    make_dataset,
    planted_lowrank_tensor,
    power_law_sparse_tensor,
    read_tns,
    write_tns,
)
from repro.distributed import collect_partition_statistics, distributed_hooi
from repro.parallel import ParallelConfig, shared_hooi
from repro.partition import make_partition


@pytest.fixture(scope="module")
def workload():
    """A mid-size skewed tensor shared by the integration tests."""
    return power_law_sparse_tensor((120, 90, 150), 8000, exponents=0.8, seed=17)


class TestEndToEndConsistency:
    def test_sequential_threaded_distributed_met_agree(self, workload):
        options = HOOIOptions(max_iterations=3, init="random", seed=0)
        ranks = (6, 6, 6)
        sequential = hooi(workload, ranks, options)
        threaded = shared_hooi(workload, ranks, options,
                               config=ParallelConfig(num_threads=4))
        met = met_hooi(workload, ranks, options)
        partition = make_partition(workload, 4, "fine-hp", seed=0)
        distributed = distributed_hooi(workload, ranks, partition, options)

        reference = sequential.fit_history
        assert np.allclose(threaded.result.fit_history, reference, atol=1e-9)
        assert np.allclose(met.fit_history, reference, atol=1e-9)
        assert np.allclose(distributed.fit_history, reference, atol=1e-6)

    def test_fit_improves_with_rank(self, workload):
        options = HOOIOptions(max_iterations=3, init="hosvd", seed=0)
        small = hooi(workload, 2, options).fit
        large = hooi(workload, 8, options).fit
        assert large > small

    def test_io_then_decompose(self, tmp_path, workload):
        path = tmp_path / "workload.tns"
        write_tns(workload, path)
        loaded = read_tns(path)
        options = HOOIOptions(max_iterations=2, init="random", seed=0)
        a = hooi(workload, 4, options)
        b = hooi(loaded, 4, options)
        assert np.allclose(a.fit_history, b.fit_history, atol=1e-9)

    def test_planted_model_recovered_through_full_pipeline(self):
        observed, truth = planted_lowrank_tensor((40, 30, 20), (3, 3, 3), 20000, seed=4)
        dense_model = SparseTensor.from_dense(truth.to_dense())
        result = hooi(dense_model, (3, 3, 3),
                      HOOIOptions(max_iterations=6, init="hosvd"))
        assert result.fit > 0.999
        # Held-out prediction: the recovered model should predict the observed
        # entries of the planted tensor almost exactly.
        predicted = result.decomposition.reconstruct_entries(observed.indices)
        assert np.allclose(predicted, observed.values, atol=1e-6)


class TestPaperQualitativeClaims:
    """Scaled-down checks of the paper's headline qualitative results."""

    def test_hypergraph_partitioning_reduces_communication(self, workload):
        ranks = (6, 6, 6)
        hp = collect_partition_statistics(
            workload, make_partition(workload, 8, "fine-hp", seed=0), ranks
        )
        rd = collect_partition_statistics(
            workload, make_partition(workload, 8, "fine-rd", seed=0), ranks
        )
        hp_volume = sum(m.comm_volume.sum() for m in hp.modes)
        rd_volume = sum(m.comm_volume.sum() for m in rd.modes)
        assert hp_volume < 0.6 * rd_volume

    def test_fine_grain_ttmc_balance_beats_coarse(self, workload):
        ranks = (6, 6, 6)
        fine = collect_partition_statistics(
            workload, make_partition(workload, 8, "fine-hp", seed=0), ranks
        )
        coarse = collect_partition_statistics(
            workload, make_partition(workload, 8, "coarse-bl", seed=0), ranks
        )
        for mode in range(workload.order):
            f = fine.modes[mode].ttmc_work
            c = coarse.modes[mode].ttmc_work
            fine_imbalance = f.max() / max(f.mean(), 1.0)
            coarse_imbalance = c.max() / max(c.mean(), 1.0)
            assert fine_imbalance <= coarse_imbalance + 1e-9

    def test_symbolic_preprocessing_amortized(self, workload):
        """Symbolic TTMc takes a minority of the total HOOI time (Section V)."""
        result = hooi(workload, 6, HOOIOptions(max_iterations=5, init="random", seed=0))
        symbolic = result.timings["symbolic"]
        total = result.timings.total()
        assert symbolic < 0.35 * total

    def test_trsvd_converges_in_few_restarts(self, workload):
        """The paper reports SLEPc converging in < 5 iterations."""
        result = hooi(workload, 6, HOOIOptions(max_iterations=2, init="random", seed=0))
        restarts = [r.iterations for r in result.trsvd_stats]
        assert np.mean(restarts) <= 6

    def test_distributed_simulated_time_decreases_with_ranks(self):
        from repro.experiments.calibration import scaled_machine

        tensor = make_dataset("nell", scale=5e-5, seed=0)
        ranks = (5, 5, 5)
        options = HOOIOptions(max_iterations=1, init="random", seed=0)
        # Pair the scaled-down analog with the scale-matched machine model so
        # compute (not per-message latency) dominates, as in the experiments.
        machine = scaled_machine(5e-5)
        times = {}
        for parts in (2, 8):
            partition = make_partition(tensor, parts, "fine-hp", seed=0)
            run = distributed_hooi(tensor, ranks, partition, options, machine=machine)
            times[parts] = run.simulated_time_per_iteration
        assert times[8] < times[2]

    def test_dataset_analog_pipeline(self):
        """Quickstart-style flow on a dataset analog: generate → decompose → fit."""
        tensor = make_dataset("netflix", scale=2e-4, seed=0)
        result = hooi(tensor, (8, 4, 4),
                      HOOIOptions(max_iterations=3, init="hosvd", seed=0))
        assert 0.0 < result.fit <= 1.0
        assert np.isclose(
            result.fit, tucker_fit(tensor, result.decomposition), atol=1e-9
        )
