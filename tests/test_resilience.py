"""Fault tolerance: checkpoint/resume, the degradation ladder, the breaker.

What must hold:

* a checkpoint written at sweep ``k`` and resumed reproduces the
  uninterrupted run's factors and fit exactly (property-tested over random
  sweep boundaries across the sequential/thread/process backends);
* checkpoint files are atomic, content-hash verified (corruption is loudly
  rejected) and carry enough metadata to refuse an incompatible resume with
  an actionable error;
* the circuit breaker walks closed → open → half-open → closed
  deterministically, and the ladder descends one rung at a time;
* the serving layer survives a SIGKILLed worker by *resuming* (not
  recomputing) and completes a persistently crashing job on the thread
  tier with the per-tier fallback counter incremented — with no
  ``/dev/shm`` leak either way;
* the orphaned-segment janitor removes exactly the stale repro-prefixed
  segments and nothing else.

Everything here is deterministic: seeded options, injected clocks, scripted
crashes.  The heavier scripted-fault scenarios live in ``test_faults.py``
(the CI "Resilience chaos sweep" re-runs those under fork and spawn).
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.hooi import HOOIOptions, hooi
from repro.core.sparse_tensor import SparseTensor
from repro.resilience.checkpoint import (
    CheckpointCorruptError,
    Checkpointer,
    load_checkpoint,
    resolve_resume,
)
from repro.resilience.degrade import (
    CircuitBreaker,
    CircuitOpenError,
    DegradationLadder,
)
from repro.resilience.retry import RetryPolicy

GRAM = dict(trsvd_method="gram", seed=0)


def _tensor(shape=(20, 15, 12), nnz=300, seed=7) -> SparseTensor:
    rng = np.random.default_rng(seed)
    idx = np.unique(
        np.stack([rng.integers(0, s, nnz) for s in shape], axis=1), axis=0
    )
    return SparseTensor(idx, rng.standard_normal(len(idx)), shape)


# --------------------------------------------------------------------------- #
# Checkpoint files
# --------------------------------------------------------------------------- #
class TestCheckpointFiles:
    def test_roundtrip_and_integrity(self, tmp_path):
        t = _tensor()
        opts = HOOIOptions(max_iterations=2, checkpoint_dir=str(tmp_path), **GRAM)
        hooi(t, 4, opts)
        path = tmp_path / Checkpointer.FILENAME
        assert path.exists()
        state = load_checkpoint(path)
        assert state.completed_sweeps == 2
        assert state.shape == (20, 15, 12)
        assert state.ranks == (4, 4, 4)
        assert len(state.factors) == 3
        assert state.options["trsvd_method"] == "gram"
        assert state.options_fingerprint == opts.options_fingerprint()
        # No tmp litter from the atomic write protocol.
        assert [p.name for p in tmp_path.iterdir()] == [Checkpointer.FILENAME]

    def test_corruption_is_detected(self, tmp_path):
        t = _tensor()
        hooi(t, 4, HOOIOptions(
            max_iterations=1, checkpoint_dir=str(tmp_path), **GRAM
        ))
        path = tmp_path / Checkpointer.FILENAME
        # Rewrite one payload array while keeping the stored digest: the
        # zip container stays valid, so only the content hash can catch it.
        with np.load(path) as payload:
            entries = {name: payload[name] for name in payload.files}
        entries["factor0"] = entries["factor0"] + 1e-3
        with path.open("wb") as handle:
            np.savez(handle, **entries)
        with pytest.raises(CheckpointCorruptError, match="integrity"):
            load_checkpoint(path)

    def test_truncation_fails_loudly(self, tmp_path):
        t = _tensor()
        hooi(t, 4, HOOIOptions(
            max_iterations=1, checkpoint_dir=str(tmp_path), **GRAM
        ))
        path = tmp_path / Checkpointer.FILENAME
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(Exception):
            load_checkpoint(path)

    def test_non_checkpoint_file_is_rejected(self, tmp_path):
        bogus = tmp_path / "x.ckpt.npz"
        np.savez(bogus.open("wb"), a=np.zeros(3))
        with pytest.raises(Exception, match="not a HOOI checkpoint"):
            load_checkpoint(bogus)

    def test_checkpointer_interval(self, tmp_path):
        t = _tensor()
        ck = Checkpointer(tmp_path, interval=3)
        hooi(t, 4, HOOIOptions(max_iterations=7, tolerance=0.0, **GRAM),
             checkpoint=ck)
        # Sweeps 1 (always), 3 and 6 snapshot; the rolling file holds the
        # last one.
        assert ck.saves == 3
        assert load_checkpoint(ck.path).completed_sweeps == 6

    def test_resolve_resume_forms(self, tmp_path):
        assert resolve_resume(None) is None
        assert resolve_resume(False) is None
        ck = Checkpointer(tmp_path)
        assert resolve_resume("auto", ck) is None  # nothing saved yet
        with pytest.raises(ValueError, match="checkpoint_dir"):
            resolve_resume("auto", None)


# --------------------------------------------------------------------------- #
# Resume semantics
# --------------------------------------------------------------------------- #
class TestResume:
    def test_incompatible_resume_is_rejected(self, tmp_path):
        t = _tensor()
        hooi(t, 4, HOOIOptions(
            max_iterations=2, checkpoint_dir=str(tmp_path), **GRAM
        ))
        # Different ranks: structural mismatch.
        with pytest.raises(ValueError, match="ranks"):
            hooi(t, 5, HOOIOptions(
                max_iterations=4, checkpoint_dir=str(tmp_path), **GRAM
            ), resume="auto")
        # Different solver: numeric-path mismatch, named in the error.
        with pytest.raises(ValueError, match="trsvd_method"):
            hooi(t, 4, HOOIOptions(
                max_iterations=4, checkpoint_dir=str(tmp_path),
                trsvd_method="lanczos", seed=0,
            ), resume="auto")

    def test_volatile_fields_may_change_on_resume(self, tmp_path):
        t = _tensor()
        hooi(t, 4, HOOIOptions(
            max_iterations=2, checkpoint_dir=str(tmp_path), **GRAM
        ))
        # Extending the sweep budget and switching the execution tier are
        # the core resume use cases; both must be accepted.
        res = hooi(t, 4, HOOIOptions(
            max_iterations=5, execution="thread", num_workers=2,
            checkpoint_dir=str(tmp_path), **GRAM,
        ), resume="auto")
        assert res.resumed_sweeps == 2
        assert res.completed_sweeps == 5

    def test_old_spelling_checkpoint_resumes(self, tmp_path):
        """Checkpoints recorded with ``None`` axis spellings still resume.

        Pre-normalization builds serialized options exactly as constructed,
        so a checkpoint may carry ``ttmc_strategy: None`` where the current
        run says ``"per-mode"``.  Those are the same configuration;
        ``check_resume_compatible`` must not reject the resume over a
        spelling split (it normalizes both sides via
        :func:`repro.core.hooi.normalize_axis_fields`).
        """
        t = _tensor()
        hooi(t, 4, HOOIOptions(
            max_iterations=2, checkpoint_dir=str(tmp_path), **GRAM
        ))
        ck = Checkpointer(tmp_path)
        state = ck.load()
        # Rewrite the recorded options the way an old build spelled them.
        for key in (
            "ttmc_strategy", "execution", "tensor_format", "kernel",
            "fallback",
        ):
            assert state.options[key] is not None  # new builds are concrete
            state.options[key] = None
        res = hooi(t, 4, HOOIOptions(
            max_iterations=5, checkpoint_dir=str(tmp_path), **GRAM
        ), resume=state)
        assert res.resumed_sweeps == 2
        assert res.completed_sweeps == 5

    def test_validate_normalizes_axis_spellings(self):
        """validate() writes concrete values back onto None axis fields."""
        opts = HOOIOptions(
            ttmc_strategy=None, execution=None, tensor_format=None,
            kernel=None, fallback=None,
        ).validate()
        assert opts.ttmc_strategy == "per-mode"
        assert opts.execution == "sequential"
        assert opts.tensor_format == "coo"
        assert opts.kernel == "numpy"
        assert opts.fallback == "ladder"
        # The fingerprint of the normalized object equals the all-defaults
        # one — no None-vs-concrete identity split downstream.
        assert (
            opts.options_fingerprint()
            == HOOIOptions().validate().options_fingerprint()
        )

    def test_resume_past_budget_reports_resumed(self, tmp_path):
        t = _tensor()
        full = hooi(t, 4, HOOIOptions(
            max_iterations=3, tolerance=0.0,
            checkpoint_dir=str(tmp_path), **GRAM,
        ))
        res = hooi(t, 4, HOOIOptions(
            max_iterations=3, tolerance=0.0,
            checkpoint_dir=str(tmp_path), **GRAM,
        ), resume="auto")
        assert res.termination == "resumed"
        assert res.completed_sweeps == 3
        assert res.resumed_sweeps == 3
        np.testing.assert_array_equal(
            res.decomposition.core, full.decomposition.core
        )

    @settings(max_examples=5, deadline=None)
    @given(
        boundary=st.integers(min_value=1, max_value=3),
        execution=st.sampled_from(["sequential", "thread", "process"]),
    )
    def test_resume_reproduces_uninterrupted_run(
        self, boundary, execution, tmp_path_factory
    ):
        """Checkpoint → resume at any sweep boundary is exact (1e-10)."""
        tmp = tmp_path_factory.mktemp("ckpt")
        t = _tensor()
        base = dict(
            tolerance=0.0, execution=execution,
            num_workers=1 if execution == "sequential" else 2, **GRAM,
        )
        full = hooi(t, 4, HOOIOptions(max_iterations=4, **base))
        hooi(t, 4, HOOIOptions(
            max_iterations=boundary, checkpoint_dir=str(tmp), **base
        ))
        res = hooi(t, 4, HOOIOptions(
            max_iterations=4, checkpoint_dir=str(tmp), **base
        ), resume="auto")
        assert res.resumed_sweeps == boundary
        assert res.completed_sweeps == full.completed_sweeps == 4
        for a, b in zip(full.decomposition.factors, res.decomposition.factors):
            np.testing.assert_allclose(a, b, atol=1e-10, rtol=0)
        np.testing.assert_allclose(
            full.decomposition.core, res.decomposition.core, atol=1e-10, rtol=0
        )
        assert res.fit_history == pytest.approx(full.fit_history, abs=1e-10)


# --------------------------------------------------------------------------- #
# Termination reporting (the HOOIResult bugfix)
# --------------------------------------------------------------------------- #
class TestTermination:
    def test_max_iters(self):
        res = hooi(_tensor(), 4, HOOIOptions(
            max_iterations=3, tolerance=0.0, **GRAM
        ))
        assert res.termination == "max_iters"
        assert res.completed_sweeps == res.iterations == 3
        assert res.resumed_sweeps == 0

    def test_converged(self):
        res = hooi(_tensor(), 4, HOOIOptions(
            max_iterations=50, tolerance=1e-6, **GRAM
        ))
        assert res.converged
        assert res.termination == "converged"
        assert res.completed_sweeps < 50

    def test_graceful_cancel_returns_partial_result(self):
        seen = []

        def stop_after_two():
            # Truthy return = graceful stop (raising still aborts hard).
            seen.append(None)
            return len([s for s in seen]) > 8

        res = hooi(_tensor(), 4, HOOIOptions(
            max_iterations=50, tolerance=0.0, **GRAM
        ), cancel_check=stop_after_two)
        assert res.termination == "cancelled"
        assert not res.converged
        assert 0 < res.completed_sweeps < 50
        assert res.fit_history  # partial but populated


# --------------------------------------------------------------------------- #
# Ladder / breaker / retry units
# --------------------------------------------------------------------------- #
class TestDegradationLadder:
    def test_descent_order(self):
        ladder = DegradationLadder()
        steps = ladder.steps_from(
            execution="process", kernel="numba", tensor_format="csf"
        )
        assert [(s.field, s.to_value) for s in steps] == [
            ("execution", "thread"),
            ("execution", "sequential"),
            ("kernel", "numpy"),
            ("tensor_format", "coo"),
        ]

    def test_bottom_of_ladder(self):
        assert DegradationLadder().next_step(
            execution="sequential", kernel="numpy", tensor_format="coo"
        ) is None

    def test_tier_names_the_destination(self):
        step = DegradationLadder().next_step(execution="process")
        assert step.tier == "thread"
        assert "process -> thread" in step.describe()


class TestCircuitBreaker:
    def test_state_machine(self):
        clock = [0.0]
        b = CircuitBreaker(
            failure_threshold=2, cooldown=10.0, clock=lambda: clock[0]
        )
        assert b.state == "closed"
        b.record_failure()
        b.before_call()  # still closed below the threshold
        b.record_failure()
        assert b.state == "open"
        assert b.trips == 1
        with pytest.raises(CircuitOpenError, match="breaker is open"):
            b.before_call()
        clock[0] = 10.0
        assert b.state == "half-open"
        b.before_call()  # the single probe passes...
        with pytest.raises(CircuitOpenError):
            b.before_call()  # ...concurrent callers do not
        b.record_success()
        assert b.state == "closed"

    def test_half_open_failure_reopens(self):
        clock = [0.0]
        b = CircuitBreaker(
            failure_threshold=1, cooldown=5.0, clock=lambda: clock[0]
        )
        b.record_failure()
        clock[0] = 5.0
        b.before_call()
        b.record_failure()
        assert b.state == "open"
        assert b.trips == 2


class TestRetryPolicy:
    def test_bounds_and_backoff(self):
        p = RetryPolicy(max_retries=2, base_delay=0.1, multiplier=2, max_delay=0.3)
        assert p.should_retry(1) and p.should_retry(2) and not p.should_retry(3)
        assert p.delay(2) == pytest.approx(0.1)
        assert p.delay(3) == pytest.approx(0.2)
        assert p.delay(9) == pytest.approx(0.3)  # capped

    def test_defaults_are_immediate(self):
        assert RetryPolicy().delay(2) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)


# --------------------------------------------------------------------------- #
# Orphan janitor
# --------------------------------------------------------------------------- #
class TestCleanupOrphans:
    def test_age_gate_prefix_and_dry_run(self, tmp_path):
        from repro.parallel.shm import cleanup_orphans

        stale = tmp_path / "rpshm-deadbeef-0"
        fresh = tmp_path / "rpshm-cafecafe-0"
        other = tmp_path / "psm_someone_elses"
        for p in (stale, fresh, other):
            p.write_bytes(b"x")
        old = time.time() - 7200
        os.utime(stale, (old, old))
        os.utime(other, (old, old))

        preview = cleanup_orphans(
            max_age_seconds=3600, dry_run=True, shm_dir=str(tmp_path)
        )
        assert preview == ["rpshm-deadbeef-0"]
        assert stale.exists()  # dry run touched nothing

        removed = cleanup_orphans(max_age_seconds=3600, shm_dir=str(tmp_path))
        assert removed == ["rpshm-deadbeef-0"]
        assert not stale.exists()
        assert fresh.exists()  # too young
        assert other.exists()  # not ours: never considered

    def test_missing_dir_is_noop(self, tmp_path):
        from repro.parallel.shm import cleanup_orphans

        assert cleanup_orphans(shm_dir=str(tmp_path / "nope")) == []


# --------------------------------------------------------------------------- #
# Serving: resume-on-crash and ladder fallback (the acceptance scenarios)
# --------------------------------------------------------------------------- #
pytestmark_posix = pytest.mark.skipif(
    os.name != "posix", reason="worker pools need POSIX shared memory"
)


def _shm_segments():
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if name.startswith("psm_") or name.startswith("rpshm-")
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


async def _wait_progress(handle, sweeps: int, timeout: float = 30.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        progress = handle.progress
        if progress is not None and progress[0] + 1 >= sweeps:
            return
        await asyncio.sleep(0.005)
    raise AssertionError(f"job never reached sweep {sweeps}")


@pytestmark_posix
class TestServingResilience:
    def test_sigkill_resumes_from_checkpoint(self, medium_tensor_3d, tmp_path):
        """A killed worker costs the sweeps since the last checkpoint, not all."""
        from repro.serving import DecompositionService

        run_opts = dict(
            execution="process", max_iterations=60, tolerance=0.0, **GRAM
        )

        async def main():
            async with DecompositionService(
                num_workers=1, checkpoint_dir=tmp_path, warmup=False
            ) as service:
                handle = await service.submit(medium_tensor_3d, 4, **run_opts)
                await _wait_progress(handle, sweeps=3)
                os.kill(
                    service._pool._crew.workers[0].pid, signal.SIGKILL
                )
                result = await handle.result()
                return result, service.metrics()

        before = _shm_segments()
        result, metrics = asyncio.run(main())
        assert result.resumed_sweeps > 0  # no full recompute
        assert result.completed_sweeps == 60
        assert metrics["jobs"]["retries"] == 1
        assert metrics["jobs"]["resumed_sweeps"] == result.resumed_sweeps
        assert metrics["jobs"]["done"] == 1
        # The resumed run matches the uninterrupted computation (1e-10: the
        # conformance bar every execution tier already meets).
        full = hooi(medium_tensor_3d, 4, HOOIOptions(**run_opts))
        for a, b in zip(
            full.decomposition.factors, result.decomposition.factors
        ):
            np.testing.assert_allclose(a, b, atol=1e-10, rtol=0)
        # The completed job's rolling checkpoint was discarded...
        assert list(tmp_path.iterdir()) == []
        # ...and nothing leaked into /dev/shm.
        assert _shm_segments() <= before

    def test_breaker_opens_and_job_falls_back_to_thread(
        self, medium_tensor_3d, monkeypatch
    ):
        """Persistent pool failure → breaker opens → thread tier finishes."""
        from repro.parallel.process_pool import WorkerCrashError
        from repro.serving import DecompositionService
        from repro.serving import service as service_module

        calls = []

        def always_crash(crew, jobs):
            calls.append(len(jobs))
            return [
                (job, "crash", WorkerCrashError("injected")) for job in jobs
            ]

        monkeypatch.setattr(service_module, "run_process_batch", always_crash)

        async def main():
            async with DecompositionService(
                num_workers=1, max_retries=1, breaker_threshold=2,
                warmup=False,
            ) as service:
                with pytest.warns(RuntimeWarning, match="degrading"):
                    handle = await service.submit(
                        medium_tensor_3d, 3, execution="process",
                        max_iterations=3, **GRAM,
                    )
                    result = await handle.result()
                    # A second pooled submission while the circuit is open
                    # degrades immediately — no further pool attempts.
                    second = await service.submit(
                        medium_tensor_3d, 5, execution="process",
                        max_iterations=3, **GRAM,
                    )
                    await second.result()
                return result, service.metrics(), handle.state

        before = _shm_segments()
        result, metrics, state = asyncio.run(main())
        from repro.serving import JobState

        assert state is JobState.DONE
        assert len(calls) == 2  # first attempt + one retry; breaker then open
        assert metrics["fallbacks"]["thread"] == 2
        assert metrics["pool"]["breaker_state"] == "open"
        assert metrics["jobs"]["done"] == 2
        assert metrics["jobs"]["failed"] == 0
        # The degraded run computes the same decomposition the process tier
        # would have (execution tiers are numerically interchangeable).
        full = hooi(medium_tensor_3d, 3, HOOIOptions(
            max_iterations=3, **GRAM
        ))
        for a, b in zip(
            full.decomposition.factors, result.decomposition.factors
        ):
            np.testing.assert_allclose(a, b, atol=1e-10, rtol=0)
        assert _shm_segments() <= before

    def test_fallback_none_fails_loudly(self, small_tensor_3d, monkeypatch):
        from repro.parallel.process_pool import WorkerCrashError
        from repro.serving import DecompositionService, JobState
        from repro.serving import service as service_module

        monkeypatch.setattr(
            service_module, "run_process_batch",
            lambda crew, jobs: [
                (job, "crash", WorkerCrashError("injected")) for job in jobs
            ],
        )

        async def main():
            async with DecompositionService(
                num_workers=1, max_retries=0, warmup=False
            ) as service:
                handle = await service.submit(
                    small_tensor_3d, 3, execution="process",
                    fallback="none", max_iterations=2, **GRAM,
                )
                with pytest.raises(WorkerCrashError):
                    await handle.result()
                return handle.state, service.metrics()

        state, metrics = asyncio.run(main())
        assert state is JobState.FAILED
        assert metrics["fallbacks"] == {}


# --------------------------------------------------------------------------- #
# Options plumbing
# --------------------------------------------------------------------------- #
class TestResilienceOptions:
    def test_validation(self):
        with pytest.raises(ValueError, match="fallback"):
            HOOIOptions(fallback="maybe").validate()
        with pytest.raises(ValueError, match="checkpoint_interval"):
            HOOIOptions(checkpoint_interval=0).validate()

    def test_serialization_roundtrip(self):
        opts = HOOIOptions(
            checkpoint_dir="/tmp/ck", checkpoint_interval=3, fallback="none"
        )
        back = HOOIOptions.from_dict(opts.to_dict())
        assert back == opts
        assert back.options_fingerprint() == opts.options_fingerprint()

    def test_distributed_rejects_checkpoint_args(self):
        from repro import decompose

        with pytest.raises(ValueError, match="single-node"):
            decompose(_tensor(), 4, execution="distributed", resume="auto")
