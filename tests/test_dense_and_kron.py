"""Unit tests for dense matricization/folding, dense TTM and Kronecker rows."""

import numpy as np
import pytest

from repro.core import (
    batch_kron_rows,
    dense_ttm,
    dense_ttm_chain,
    dense_ttv,
    fold,
    kron_row_length,
    kron_rows,
    tensor_norm,
    unfold,
)


class TestUnfoldFold:
    def test_unfold_fold_roundtrip(self, rng):
        t = rng.standard_normal((4, 5, 6))
        for mode in range(3):
            assert np.allclose(fold(unfold(t, mode), mode, t.shape), t)

    def test_unfold_fold_roundtrip_4d(self, rng):
        t = rng.standard_normal((3, 4, 2, 5))
        for mode in range(4):
            assert np.allclose(fold(unfold(t, mode), mode, t.shape), t)

    def test_unfold_known_small_case(self):
        # Kolda & Bader, example 2.1-like check: element (i, j, k) lands in
        # column j + k * J for mode-0 unfolding.
        t = np.arange(24, dtype=float).reshape(2, 3, 4)
        m = unfold(t, 0)
        assert m.shape == (2, 12)
        for j in range(3):
            for k in range(4):
                assert m[1, j + k * 3] == t[1, j, k]

    def test_fold_wrong_shape_raises(self):
        with pytest.raises(ValueError):
            fold(np.zeros((3, 5)), 0, (3, 4))

    def test_unfold_negative_mode(self, rng):
        t = rng.standard_normal((3, 4, 5))
        assert np.allclose(unfold(t, -1), unfold(t, 2))


class TestDenseTTM:
    def test_ttm_matches_einsum(self, rng):
        t = rng.standard_normal((4, 5, 6))
        u = rng.standard_normal((7, 5))
        result = dense_ttm(t, u, 1)
        expected = np.einsum("ijk,lj->ilk", t, u)
        assert np.allclose(result, expected)

    def test_ttm_transpose(self, rng):
        t = rng.standard_normal((4, 5, 6))
        u = rng.standard_normal((5, 2))
        result = dense_ttm(t, u, 1, transpose=True)
        expected = np.einsum("ijk,jl->ilk", t, u)
        assert np.allclose(result, expected)

    def test_ttm_dimension_mismatch(self, rng):
        with pytest.raises(ValueError):
            dense_ttm(rng.standard_normal((3, 3, 3)), rng.standard_normal((2, 5)), 0)

    def test_ttm_chain_skip(self, rng):
        t = rng.standard_normal((4, 5, 6))
        mats = [rng.standard_normal((s, 2)) for s in t.shape]
        out = dense_ttm_chain(t, mats, skip=1, transpose=True)
        assert out.shape == (2, 5, 2)

    def test_ttm_chain_none_entries_skipped(self, rng):
        t = rng.standard_normal((4, 5, 6))
        mats = [None, rng.standard_normal((5, 2)), None]
        out = dense_ttm_chain(t, mats, transpose=True)
        assert out.shape == (4, 2, 6)

    def test_ttm_order_independence(self, rng):
        t = rng.standard_normal((4, 5, 6))
        a = rng.standard_normal((4, 2))
        c = rng.standard_normal((6, 3))
        one = dense_ttm(dense_ttm(t, a, 0, transpose=True), c, 2, transpose=True)
        two = dense_ttm(dense_ttm(t, c, 2, transpose=True), a, 0, transpose=True)
        assert np.allclose(one, two)

    def test_ttv(self, rng):
        t = rng.standard_normal((4, 5, 6))
        v = rng.standard_normal(5)
        assert np.allclose(dense_ttv(t, v, 1), np.einsum("ijk,j->ik", t, v))

    def test_ttv_mismatch(self, rng):
        with pytest.raises(ValueError):
            dense_ttv(rng.standard_normal((3, 3)), rng.standard_normal(4), 0)

    def test_tensor_norm(self, rng):
        t = rng.standard_normal((3, 4))
        assert np.isclose(tensor_norm(t), np.linalg.norm(t))


class TestKronRows:
    def test_kron_rows_matches_numpy_kron_reversed(self, rng):
        a, b, c = rng.standard_normal(3), rng.standard_normal(4), rng.standard_normal(2)
        ours = kron_rows([a, b, c])
        reference = np.kron(c, np.kron(b, a))
        assert np.allclose(ours, reference)

    def test_kron_rows_single(self, rng):
        a = rng.standard_normal(5)
        assert np.allclose(kron_rows([a]), a)

    def test_kron_rows_empty(self):
        assert np.allclose(kron_rows([]), [1.0])

    def test_kron_row_length(self):
        assert kron_row_length([3, 4, 2]) == 24
        assert kron_row_length([]) == 1

    def test_batch_matches_loop(self, rng):
        blocks = [rng.standard_normal((6, 3)), rng.standard_normal((6, 4))]
        batch = batch_kron_rows(blocks)
        assert batch.shape == (6, 12)
        for p in range(6):
            assert np.allclose(batch[p], kron_rows([blocks[0][p], blocks[1][p]]))

    def test_batch_three_blocks(self, rng):
        blocks = [rng.standard_normal((5, 2)), rng.standard_normal((5, 3)),
                  rng.standard_normal((5, 2))]
        batch = batch_kron_rows(blocks)
        for p in range(5):
            assert np.allclose(batch[p], kron_rows([b[p] for b in blocks]))

    def test_batch_row_count_mismatch(self, rng):
        with pytest.raises(ValueError):
            batch_kron_rows([rng.standard_normal((3, 2)), rng.standard_normal((4, 2))])

    def test_batch_requires_2d(self, rng):
        with pytest.raises(ValueError):
            batch_kron_rows([rng.standard_normal(3)])

    def test_batch_empty_list(self):
        with pytest.raises(ValueError):
            batch_kron_rows([])

    def test_layout_consistency_with_unfold(self, rng):
        """kron_rows layout must match the Kolda matricization column order."""
        from repro.core import unfold

        i2, i3 = 3, 4
        u2 = rng.standard_normal(i2)
        u3 = rng.standard_normal(i3)
        outer = np.einsum("j,k->jk", u2, u3)       # (i2, i3) tensor slice
        tensor = outer[None, :, :]                  # 1 x i2 x i3
        row = unfold(tensor, 0)[0]
        assert np.allclose(row, kron_rows([u2, u3]))
