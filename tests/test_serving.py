"""The decomposition service: jobs, cache, batching, failure handling.

Each test drives a real :class:`~repro.serving.DecompositionService` — real
worker crew, real shared-memory arenas — through ``asyncio.run`` (no asyncio
test plugin needed).  The suite covers the serving contract end to end:

* results match the direct drivers to 1e-10 under concurrent submission;
* cache accounting is exact and a resubmission recomputes nothing (the
  crew's generation counter does not move on a hit);
* cancellation works both queued and mid-iteration, cooperatively;
* a SIGKILLed worker triggers the bounded crash-retry path on a fresh crew;
* teardown — including after cancels and crashes — leaks no ``/dev/shm``
  segment and no worker process.

Everything runs on ``num_workers=1`` crews: the protocol (attach/detach,
batching, crash handling) is identical at any width and the CI box has a
single core.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core import HOOIOptions, hooi
from repro.serving import (
    AdmissionError,
    DecompositionService,
    JobCancelledError,
    JobState,
    JobTimeoutError,
    ResultCache,
    pooled_eligible,
)

pytestmark = pytest.mark.skipif(
    os.name != "posix", reason="the worker crew requires POSIX"
)

GRAM = dict(trsvd_method="gram", max_iterations=3, seed=0)


def _shm_segments():
    base = Path("/dev/shm")
    if not base.exists():
        return set()
    return {p.name for p in base.iterdir() if p.name.startswith("psm_")}


def _service(**kwargs):
    kwargs.setdefault("num_workers", 1)
    kwargs.setdefault("warmup", True)
    return DecompositionService(**kwargs)


async def _wait_running(handle, timeout=30.0):
    deadline = time.monotonic() + timeout
    while handle.state is not JobState.RUNNING:
        if time.monotonic() > deadline:  # pragma: no cover - diagnostics
            raise AssertionError(f"job never started: {handle.state}")
        await asyncio.sleep(0.005)


# --------------------------------------------------------------------------- #
# Parity and concurrency
# --------------------------------------------------------------------------- #
class TestParity:
    def test_concurrent_submissions_match_direct_driver(
        self, small_tensor_3d, small_tensor_4d, medium_tensor_3d
    ):
        requests = [
            (small_tensor_3d, 4, "process"),
            (small_tensor_4d, 3, "process"),
            (medium_tensor_3d, 4, "sequential"),
            (small_tensor_3d, 3, "thread"),
        ]

        async def main():
            async with _service(batch_max=4) as service:
                handles = await asyncio.gather(
                    *[
                        service.submit(t, rank, execution=execution, **GRAM)
                        for t, rank, execution in requests
                    ]
                )
                return await asyncio.gather(
                    *[h.result() for h in handles]
                )

        results = asyncio.run(main())
        for (tensor, rank, execution), served in zip(requests, results):
            direct = hooi(
                tensor,
                rank,
                HOOIOptions(execution="sequential", **GRAM),
            )
            np.testing.assert_allclose(
                served.decomposition.core,
                direct.decomposition.core,
                atol=1e-10,
            )

    def test_small_pooled_jobs_share_one_generation(
        self, small_tensor_3d, small_tensor_4d
    ):
        async def main():
            async with _service(batch_max=4, warmup=True) as service:
                handles = [
                    await service.submit(t, 3, execution="process", **GRAM)
                    for t in (small_tensor_3d, small_tensor_4d)
                ]
                await asyncio.gather(*[h.result() for h in handles])
                return service.metrics()

        metrics = asyncio.run(main())
        # Both jobs were admitted before dispatch ran, so the batcher packed
        # them into a single attach/detach cycle.
        assert metrics["pool"]["generations"] == 1
        assert metrics["jobs"]["done"] == 2

    def test_large_pooled_job_runs_unbatched(self, small_tensor_3d):
        async def main():
            async with _service(batch_nnz_limit=10) as service:
                h1 = await service.submit(
                    small_tensor_3d, 3, execution="process", **GRAM
                )
                h2 = await service.submit(
                    small_tensor_3d, 4, execution="process", **GRAM
                )
                await asyncio.gather(h1.result(), h2.result())
                # Identical to a *completed* request: served by the cache.
                h3 = await service.submit(
                    small_tensor_3d, 3, execution="process", **GRAM
                )
                await h3.result()
                return service.metrics()

        metrics = asyncio.run(main())
        # nnz exceeds the batch limit: every computed job got its own
        # generation (the identical resubmission was served by the cache).
        assert metrics["pool"]["generations"] == 2
        assert metrics["cache"]["hits"] == 1


# --------------------------------------------------------------------------- #
# Cache behaviour
# --------------------------------------------------------------------------- #
class TestCache:
    def test_resubmission_is_a_hit_with_zero_recomputation(
        self, small_tensor_3d
    ):
        async def main():
            async with _service() as service:
                first = await service.submit(
                    small_tensor_3d, 4, execution="process", **GRAM
                )
                result = await first.result()
                generations = service.metrics()["pool"]["generations"]

                again = await service.submit(
                    small_tensor_3d, 4, execution="process", **GRAM
                )
                hit = await again.result()
                metrics = service.metrics()
                return first, again, result, hit, generations, metrics

        first, again, result, hit, generations, metrics = asyncio.run(main())
        assert not first.cached and again.cached
        assert again.state is JobState.DONE
        assert hit is result  # the very same object: nothing recomputed
        assert metrics["pool"]["generations"] == generations
        assert metrics["cache"]["hits"] == 1
        assert metrics["cache"]["misses"] == 1

    def test_equivalent_spellings_share_a_cache_line(self, small_tensor_3d):
        async def main():
            async with _service() as service:
                a = await service.submit(
                    small_tensor_3d,
                    3,
                    options=HOOIOptions(trsvd_method="gram"),
                )
                await a.result()
                # Same meaning, different spelling: dict options, explicit
                # defaults, scalar rank already broadcast.
                b = await service.submit(
                    small_tensor_3d,
                    [3, 3, 3],
                    options={"trsvd_method": "gram", "max_iterations": 5},
                )
                return b.cached

        assert asyncio.run(main())

    def test_different_tensor_content_misses(self, small_tensor_3d):
        perturbed = small_tensor_3d.astype(np.float64)
        values = perturbed.values.copy()
        values[0] += 1.0
        from repro.core import SparseTensor

        perturbed = SparseTensor(
            perturbed.indices.copy(), values, perturbed.shape
        )

        async def main():
            async with _service() as service:
                a = await service.submit(small_tensor_3d, 3, **GRAM)
                await a.result()
                b = await service.submit(perturbed, 3, **GRAM)
                await b.result()
                return b.cached, service.metrics()["cache"]

        cached, cache = asyncio.run(main())
        assert not cached
        assert cache["misses"] == 2 and cache["hits"] == 0

    def test_lru_eviction_accounting(self):
        cache = ResultCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a
        cache.put("c", 3)  # evicts b (LRU)
        assert cache.get("b") is None
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1
        assert cache.snapshot()["hits"] == 3
        assert cache.snapshot()["misses"] == 1


# --------------------------------------------------------------------------- #
# Cancellation and timeouts
# --------------------------------------------------------------------------- #
class TestCancellation:
    def test_cancel_mid_iteration(self, medium_tensor_3d):
        async def main():
            async with _service() as service:
                handle = await service.submit(
                    medium_tensor_3d,
                    4,
                    execution="process",
                    trsvd_method="gram",
                    max_iterations=500,
                    tolerance=0.0,
                )
                await _wait_running(handle)
                # Let it get at least one progress report in.
                deadline = time.monotonic() + 30.0
                while handle.progress is None and time.monotonic() < deadline:
                    await asyncio.sleep(0.01)
                assert handle.cancel()
                with pytest.raises(JobCancelledError):
                    await handle.result()
                return handle, service.metrics()

        handle, metrics = asyncio.run(main())
        assert handle.state is JobState.CANCELLED
        # It really ran before being cancelled, mid-iteration.
        assert handle.progress is not None
        assert metrics["jobs"]["cancelled"] == 1

    def test_cancel_while_queued_never_runs(self, small_tensor_3d, medium_tensor_3d):
        async def main():
            async with _service() as service:
                blocker = await service.submit(
                    medium_tensor_3d,
                    4,
                    execution="process",
                    trsvd_method="gram",
                    max_iterations=60,
                    tolerance=0.0,
                )
                await _wait_running(blocker)
                queued = await service.submit(
                    small_tensor_3d, 3, execution="process", **GRAM
                )
                assert queued.cancel()
                # The in-flight blocker completes normally; the cancelled
                # queued job is finalized at dispatch without ever running.
                await blocker.result()
                with pytest.raises(JobCancelledError):
                    await queued.result()
                assert queued.progress is None  # never started
                return queued.state

        assert asyncio.run(main()) is JobState.CANCELLED

    def test_cancel_after_done_returns_false(self, small_tensor_3d):
        async def main():
            async with _service() as service:
                handle = await service.submit(small_tensor_3d, 3, **GRAM)
                await handle.result()
                return handle.cancel()

        assert asyncio.run(main()) is False

    def test_timeout_aborts_and_fails_the_job(self, medium_tensor_3d):
        async def main():
            async with _service() as service:
                handle = await service.submit(
                    medium_tensor_3d,
                    4,
                    execution="process",
                    trsvd_method="gram",
                    max_iterations=100_000,
                    tolerance=0.0,
                    timeout=0.3,
                )
                with pytest.raises(JobTimeoutError):
                    await handle.result()
                return handle.state, service.metrics()

        state, metrics = asyncio.run(main())
        assert state is JobState.FAILED
        assert metrics["jobs"]["failed"] == 1


# --------------------------------------------------------------------------- #
# Crash retry
# --------------------------------------------------------------------------- #
class TestCrashRetry:
    def test_midrun_worker_kill_retries_on_fresh_crew(self, medium_tensor_3d):
        async def main():
            async with _service(max_retries=1) as service:
                handle = await service.submit(
                    medium_tensor_3d,
                    4,
                    execution="process",
                    trsvd_method="gram",
                    max_iterations=60,
                    tolerance=0.0,
                )
                await _wait_running(handle)
                await asyncio.sleep(0.05)
                crew = service._pool._crew
                os.kill(crew.workers[0].pid, signal.SIGKILL)
                result = await handle.result()
                return result, service.metrics()

        result, metrics = asyncio.run(main())
        assert result.iterations == 60
        assert metrics["jobs"]["retries"] == 1
        assert metrics["pool"]["resets"] == 1
        assert metrics["jobs"]["done"] == 1

    def test_dead_crew_is_replaced_before_dispatch(self, small_tensor_3d):
        async def main():
            async with _service() as service:
                warm = await service.submit(
                    small_tensor_3d, 3, execution="process", **GRAM
                )
                await warm.result()
                os.kill(service._pool._crew.workers[0].pid, signal.SIGKILL)
                await asyncio.sleep(0.05)
                handle = await service.submit(
                    small_tensor_3d, 4, execution="process", **GRAM
                )
                result = await handle.result()
                return handle.state, result

        state, result = asyncio.run(main())
        # acquire() health-checks the crew: the job never saw the corpse.
        assert state is JobState.DONE
        assert result.iterations == 3

    def test_retries_are_bounded(self, medium_tensor_3d, monkeypatch):
        from repro.parallel.process_pool import WorkerCrashError
        from repro.serving import service as service_module

        calls = []

        def always_crash(crew, jobs):
            calls.append(len(jobs))
            return [
                (job, "crash", WorkerCrashError("injected")) for job in jobs
            ]

        monkeypatch.setattr(
            service_module, "run_process_batch", always_crash
        )

        async def main():
            async with _service(max_retries=1, warmup=False) as service:
                # fallback="none" opts out of the degradation ladder: this
                # test asserts the loud-failure path stays available.
                handle = await service.submit(
                    medium_tensor_3d, 3, execution="process",
                    fallback="none", **GRAM
                )
                with pytest.raises(WorkerCrashError):
                    await handle.result()
                return handle.state, service.metrics()

        state, metrics = asyncio.run(main())
        assert state is JobState.FAILED
        assert len(calls) == 2  # first attempt + one bounded retry
        assert metrics["jobs"]["retries"] == 1
        assert metrics["fallbacks"] == {}


# --------------------------------------------------------------------------- #
# Admission and lifecycle
# --------------------------------------------------------------------------- #
class TestAdmission:
    def test_queue_bound_raises_admission_error(
        self, small_tensor_3d, medium_tensor_3d
    ):
        async def main():
            async with _service(max_pending=1) as service:
                blocker = await service.submit(
                    medium_tensor_3d,
                    4,
                    execution="process",
                    trsvd_method="gram",
                    max_iterations=60,
                    tolerance=0.0,
                )
                await _wait_running(blocker)
                filler = await service.submit(
                    small_tensor_3d, 3, execution="process", **GRAM
                )
                with pytest.raises(AdmissionError):
                    await service.submit(
                        small_tensor_3d, 4, execution="process", **GRAM
                    )
                blocker.cancel()
                with pytest.raises(JobCancelledError):
                    await blocker.result()
                await filler.result()

        asyncio.run(main())

    def test_invalid_requests_rejected_at_admission(self, small_tensor_3d):
        async def main():
            async with _service(warmup=False) as service:
                # numba × dimtree is the one remaining composition hole.
                with pytest.raises(ValueError, match="dimtree"):
                    await service.submit(
                        small_tensor_3d,
                        3,
                        kernel="numba",
                        ttmc_strategy="dimtree",
                    )
                with pytest.raises(ValueError, match="max_iterations"):
                    await service.submit(small_tensor_3d, 3, max_iter=2)
                return service.metrics()["jobs"]["queued"]

        assert asyncio.run(main()) == 0

    def test_submit_after_close_rejected(self, small_tensor_3d):
        async def main():
            service = _service(warmup=False)
            await service.start()
            await service.aclose()
            with pytest.raises(AdmissionError):
                await service.submit(small_tensor_3d, 3, **GRAM)

        asyncio.run(main())

    def test_nonpooled_shapes_fall_back_to_direct(self, small_tensor_3d):
        async def main():
            async with _service(warmup=False) as service:
                handle = await service.submit(
                    small_tensor_3d,
                    3,
                    execution="process",
                    ttmc_strategy="dimtree",
                    max_iterations=2,
                    num_workers=2,
                )
                assert not pooled_eligible(service._jobs[handle.job_id])
                result = await handle.result()
                return result.iterations, service.metrics()

        iterations, metrics = asyncio.run(main())
        assert iterations == 2
        # The direct path never touched the persistent crew.
        assert metrics["pool"]["generations"] == 0


# --------------------------------------------------------------------------- #
# Teardown hygiene
# --------------------------------------------------------------------------- #
class TestTeardown:
    def test_no_leaked_segments_or_workers_after_mixed_load(
        self, small_tensor_3d, medium_tensor_3d
    ):
        before = _shm_segments()

        async def main():
            async with _service(max_retries=1) as service:
                ok = await service.submit(
                    small_tensor_3d, 3, execution="process", **GRAM
                )
                await ok.result()
                victim = await service.submit(
                    medium_tensor_3d,
                    4,
                    execution="process",
                    trsvd_method="gram",
                    max_iterations=300,
                    tolerance=0.0,
                )
                await _wait_running(victim)
                await asyncio.sleep(0.05)
                os.kill(service._pool._crew.workers[0].pid, signal.SIGKILL)
                cancelled = await service.submit(
                    small_tensor_3d, 4, execution="process", **GRAM
                )
                cancelled.cancel()
                await victim.result()  # survives via the retry path
                with pytest.raises(JobCancelledError):
                    await cancelled.result()
                return service._pool._crew

        crew = asyncio.run(main())
        # The service exited its context: crew reaped, arenas unlinked.
        assert _shm_segments() - before == set()
        if crew is not None:
            assert all(not w.is_alive() for w in crew.workers)

    def test_drainless_close_cancels_queued_jobs(
        self, small_tensor_3d, medium_tensor_3d
    ):
        before = _shm_segments()

        async def main():
            service = _service()
            await service.start()
            blocker = await service.submit(
                medium_tensor_3d,
                4,
                execution="process",
                trsvd_method="gram",
                max_iterations=30,
                tolerance=0.0,
            )
            await _wait_running(blocker)
            queued = await service.submit(
                small_tensor_3d, 3, execution="process", **GRAM
            )
            await service.aclose(drain=False)
            assert blocker.state is JobState.DONE  # in-flight runs complete
            with pytest.raises(JobCancelledError):
                await queued.result()
            return queued.state

        assert asyncio.run(main()) is JobState.CANCELLED
        assert _shm_segments() - before == set()


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
class TestMetrics:
    def test_snapshot_shape_and_latency_percentiles(self, small_tensor_3d):
        async def main():
            async with _service() as service:
                for rank in (2, 3, 4):
                    handle = await service.submit(
                        small_tensor_3d, rank, execution="process", **GRAM
                    )
                    await handle.result()
                return service.metrics()

        metrics = asyncio.run(main())
        assert metrics["jobs"]["done"] == 3
        latency = metrics["latency_seconds"]
        assert latency["count"] == 3
        assert 0 < latency["p50"] <= latency["p95"]
        assert metrics["jobs_per_second"] > 0
        assert metrics["cache"]["misses"] == 3
