#!/usr/bin/env python3
"""Tag recommendation on a Delicious/Flickr-style 4-mode tensor.

The paper motivates the Tucker decomposition with item/tag recommendation on
social-bookmarking data (Delicious, Flickr): a sparse
``time x user x resource x tag`` tensor is decomposed, and the reconstructed
scores rank candidate tags for a (user, resource) pair.  This example runs
that workflow end-to-end on a synthetic Delicious analog:

1. generate the scaled analog tensor (power-law users/resources/tags);
2. hold out a fraction of the observed (user, resource, tag) interactions;
3. fit a Tucker model with HOOI and a CP model with CP-ALS (baseline);
4. for each held-out interaction, rank all candidate tags and report the
   hit-rate@k of both models.

Run:  python examples/tag_recommendation.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import cp_als
from repro import SparseTensor, decompose
from repro.data import make_dataset


def split_train_test(tensor: SparseTensor, fraction: float, seed: int):
    """Randomly hold out a fraction of the nonzeros."""
    rng = np.random.default_rng(seed)
    mask = rng.random(tensor.nnz) < fraction
    test = tensor.select_nonzeros(np.flatnonzero(mask))
    train = tensor.select_nonzeros(np.flatnonzero(~mask))
    return train, test


def hit_rate_at_k(score_fn, test: SparseTensor, num_tags: int, k: int,
                  sample: int, seed: int) -> float:
    """Fraction of held-out interactions whose true tag ranks in the top-k."""
    rng = np.random.default_rng(seed)
    picks = rng.choice(test.nnz, size=min(sample, test.nnz), replace=False)
    hits = 0
    for position in picks:
        time_idx, user, resource, true_tag = test.indices[position]
        candidates = np.arange(num_tags)
        coords = np.column_stack([
            np.full(num_tags, time_idx),
            np.full(num_tags, user),
            np.full(num_tags, resource),
            candidates,
        ])
        scores = score_fn(coords)
        top = np.argsort(-scores)[:k]
        hits += int(true_tag in candidates[top])
    return hits / len(picks)


def main() -> None:
    tensor = make_dataset("delicious", scale=2e-4, seed=0)
    print(f"Delicious analog: {tensor} (time x user x resource x tag)")

    train, test = split_train_test(tensor, fraction=0.2, seed=1)
    print(f"train nonzeros: {train.nnz},  held-out: {test.nnz}")

    ranks = (4, 8, 8, 8)
    result = decompose(train, ranks, max_iterations=6, init="hosvd", seed=0)
    tucker = result.decomposition
    print(f"\nTucker/HOOI: ranks {tucker.ranks}, fit {result.fit:.4f}, "
          f"{result.iterations} iterations")

    cp = cp_als(train, rank=8, max_iterations=15, seed=0)
    print(f"CP-ALS     : rank 8, fit {cp.fit:.4f}, {cp.iterations} iterations")

    num_tags = tensor.shape[3]
    k = max(num_tags // 20, 5)
    tucker_hits = hit_rate_at_k(tucker.reconstruct_entries, test, num_tags, k,
                                sample=200, seed=2)
    cp_hits = hit_rate_at_k(cp.reconstruct_entries, test, num_tags, k,
                            sample=200, seed=2)
    random_baseline = k / num_tags

    print(f"\nTag recommendation hit-rate@{k} over {num_tags} candidate tags")
    print(f"  Tucker (HOOI)   : {tucker_hits:.3f}")
    print(f"  CP (ALS)        : {cp_hits:.3f}")
    print(f"  random guessing : {random_baseline:.3f}")

    # The paper's point: Tucker's per-mode ranks compress the tensor hard.
    print(f"\nTucker model stores {tucker.core.size + sum(f.size for f in tucker.factors)} "
          f"numbers for {train.nnz} training nonzeros "
          f"({tucker.compression_ratio(train.nnz):.1f}x compression)")


if __name__ == "__main__":
    main()
