#!/usr/bin/env python3
"""Knowledge-base analysis on a NELL-style (entity, relation, entity) tensor.

The paper's NELL tensor stores (entity, relation, entity) beliefs from the
"Read the Web" project.  A Tucker decomposition of such a tensor gives
per-mode latent spaces: rows of the entity factors embed entities, rows of the
relation factor embed relations, and the core tensor couples them.  This
example:

1. generates the scaled NELL analog;
2. fits a Tucker model with HOOI (comparing random vs HOSVD initialization,
   the two options Algorithm 1 mentions);
3. uses the mode-1 factor to find nearest-neighbour entities in latent space;
4. scores a few unseen (entity, relation, entity) triples against observed
   ones — the missing-link-prediction use the paper cites for Tucker.

Run:  python examples/knowledge_base_nell.py
"""

from __future__ import annotations

import numpy as np

from repro import decompose
from repro.data import make_dataset


def cosine_neighbours(embedding: np.ndarray, row: int, top: int) -> np.ndarray:
    """Indices of the ``top`` nearest rows of ``embedding`` to ``row`` (cosine)."""
    norms = np.linalg.norm(embedding, axis=1) + 1e-12
    normalized = embedding / norms[:, None]
    scores = normalized @ normalized[row]
    scores[row] = -np.inf
    return np.argsort(-scores)[:top]


def main() -> None:
    tensor = make_dataset("nell", scale=3e-4, seed=0)
    print(f"NELL analog: {tensor} (entity x relation x entity)")

    ranks = (10, 5, 10)
    random_run = decompose(tensor, ranks,
                           max_iterations=8, init="random", seed=0)
    hosvd_run = decompose(tensor, ranks,
                          max_iterations=8, init="hosvd", seed=0)
    print(f"\nfit with random init : {random_run.fit:.4f} "
          f"({random_run.iterations} iterations)")
    print(f"fit with HOSVD init  : {hosvd_run.fit:.4f} "
          f"({hosvd_run.iterations} iterations)")

    model = hosvd_run.decomposition
    entity_embedding = model.factors[0]

    # 3. Latent-space neighbours of the most active entities.
    activity = tensor.mode_counts(0)
    busiest = np.argsort(-activity)[:3]
    print("\nNearest neighbours in the entity latent space:")
    for entity in busiest:
        neighbours = cosine_neighbours(entity_embedding, int(entity), top=3)
        print(f"  entity {int(entity):5d} (degree {int(activity[entity])}): "
              f"neighbours {neighbours.tolist()}")

    # 4. Link prediction: observed triples should score higher than random ones.
    rng = np.random.default_rng(3)
    observed_sample = tensor.indices[
        rng.choice(tensor.nnz, size=min(500, tensor.nnz), replace=False)
    ]
    random_triples = np.column_stack(
        [rng.integers(0, s, size=500) for s in tensor.shape]
    )
    observed_scores = model.reconstruct_entries(observed_sample)
    random_scores = model.reconstruct_entries(random_triples)
    print("\nLink prediction sanity check:")
    print(f"  mean model score of observed triples : {observed_scores.mean():.4f}")
    print(f"  mean model score of random triples   : {random_scores.mean():.4f}")
    better = float(np.mean(observed_scores > np.median(random_scores)))
    print(f"  observed triples scoring above the random median: {better:.1%}")


if __name__ == "__main__":
    main()
