#!/usr/bin/env python3
"""Distributed HOOI on the simulated MPI runtime: partitions, volumes, scaling.

This example reproduces, at laptop scale, the workflow behind the paper's
Tables II-IV:

1. generate the Flickr analog tensor;
2. build all four task distributions the paper evaluates (fine-hp, fine-rd,
   coarse-hp, coarse-bl);
3. run the full distributed HOOI (Algorithm 4) on the simulated MPI world and
   compare per-strategy communication volumes, work balance and simulated
   time per iteration;
4. sweep the simulated rank count with the machine model to show the strong
   scaling trend.

Run:  python examples/distributed_scaling.py
"""

from __future__ import annotations

import numpy as np

from repro import decompose
from repro.core import HOOIOptions
from repro.data import make_dataset
from repro.distributed import (
    collect_partition_statistics,
    estimate_iteration_time,
)
from repro.experiments.calibration import paper_ranks, scaled_machine
from repro.partition import make_partition

SCALE = 2e-4
NUM_RANKS = 8
STRATEGIES = ("fine-hp", "fine-rd", "coarse-hp", "coarse-bl")


def main() -> None:
    tensor = make_dataset("flickr", scale=SCALE, seed=0)
    ranks = paper_ranks(tensor.order)
    machine = scaled_machine(SCALE)
    print(f"Flickr analog: {tensor}")
    print(f"decomposition ranks: {ranks}, simulated MPI ranks: {NUM_RANKS}\n")

    options = HOOIOptions(max_iterations=3, init="random", seed=0)
    reference = decompose(tensor, ranks, options=options)
    print(f"sequential reference fit after {reference.iterations} iterations: "
          f"{reference.fit:.4f}\n")

    print(f"{'strategy':10s} {'fit ok':>6s} {'sim s/iter':>11s} "
          f"{'comm max (doubles)':>19s} {'comm avg':>9s} {'TTMc imbalance':>15s}")
    for strategy in STRATEGIES:
        partition = make_partition(tensor, NUM_RANKS, strategy, seed=0, ranks=ranks)
        run = decompose(tensor, ranks, execution="distributed",
                        partition=partition, machine=machine, options=options)
        agrees = np.allclose(run.fit_history, reference.fit_history, atol=1e-6)
        volumes = run.comm_volume_elements()
        stats = collect_partition_statistics(tensor, partition, ranks)
        worst_imbalance = max(
            m.ttmc_work.max() / max(m.ttmc_work.mean(), 1.0) for m in stats.modes
        )
        print(f"{strategy:10s} {str(agrees):>6s} "
              f"{run.simulated_time_per_iteration:11.3f} "
              f"{volumes.max():19.0f} {volumes.mean():9.0f} "
              f"{worst_imbalance:15.2f}")

    print("\nStrong scaling (modelled seconds per HOOI iteration, fine-hp):")
    print(f"{'#ranks':>7s} {'fine-hp':>9s} {'coarse-bl':>10s}")
    for num_parts in (1, 4, 16, 64):
        row = []
        for strategy in ("fine-hp", "coarse-bl"):
            partition = make_partition(tensor, num_parts, strategy, seed=0, ranks=ranks)
            row.append(estimate_iteration_time(tensor, partition, ranks, machine=machine))
        print(f"{num_parts:7d} {row[0]:9.2f} {row[1]:10.2f}")

    print("\nTakeaway (matches the paper): the fine-grain hypergraph partition "
          "keeps the TTMc balanced and the communication volume low, so it "
          "scales further than coarse-grain or random distributions.")


if __name__ == "__main__":
    main()
