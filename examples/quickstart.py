#!/usr/bin/env python3
"""Quickstart: Tucker-decompose a sparse tensor with HyperTensor-py.

This walks through the core API in five steps (mirroring Fig. 1 and
Algorithm 1 of the paper):

1. build / generate a sparse tensor in COO form;
2. run the sequential HOOI (Tucker-ALS) with chosen ranks;
3. inspect the fit, the core tensor and the factor matrices;
4. rerun with the shared-memory parallel driver (Algorithm 3);
5. evaluate the model at held-out coordinates.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import SparseTensor, decompose, tucker_fit
from repro.core import HOOIOptions
from repro.parallel import ParallelConfig, shared_hooi


def main() -> None:
    # ------------------------------------------------------------------ #
    # 1. A sparse tensor with known low-rank structure: a planted
    #    rank-(4,3,2) Tucker model plus a little noise, stored in COO form.
    # ------------------------------------------------------------------ #
    from repro.data import random_tucker_tensor   # noqa: deferred import for step 1

    rng = np.random.default_rng(42)
    truth = random_tucker_tensor(shape=(60, 50, 40), ranks=(4, 3, 2), seed=42)
    dense = truth.to_dense()
    dense += 0.01 * np.abs(dense).mean() * rng.standard_normal(dense.shape)
    observed = SparseTensor.from_dense(dense)
    print(f"observed tensor : {observed}")
    print(f"ground truth    : Tucker ranks {truth.ranks}")

    # You can also build tensors directly from coordinates:
    toy = SparseTensor(
        indices=np.array([[0, 1, 2], [1, 0, 2], [2, 2, 0]]),
        values=np.array([1.0, -2.0, 0.5]),
        shape=(3, 3, 3),
    )
    print(f"toy tensor      : {toy}")

    # ------------------------------------------------------------------ #
    # 2. Sequential HOOI (Algorithm 1 of the paper), through the unified
    #    decompose() facade — every option is a plain keyword.
    # ------------------------------------------------------------------ #
    result = decompose(observed, (4, 3, 2),
                       max_iterations=10, init="hosvd", tolerance=1e-6, seed=0)
    print(f"\nHOOI finished after {result.iterations} iterations "
          f"(converged: {result.converged})")
    print("fit per iteration:", [round(f, 4) for f in result.fit_history])

    # ------------------------------------------------------------------ #
    # 3. Inspect the decomposition [[G; U1, U2, U3]].
    # ------------------------------------------------------------------ #
    model = result.decomposition
    print(f"\ncore tensor G shape      : {model.core.shape}")
    print(f"factor matrix shapes     : {[f.shape for f in model.factors]}")
    print(f"compression vs nonzeros  : {model.compression_ratio(observed.nnz):.1f}x")
    print(f"fit (1 - relative error) : {tucker_fit(observed, model):.4f}")
    print("per-step time breakdown  :",
          {k: f"{v:.3f}s" for k, v in result.timings.totals.items()})

    # ------------------------------------------------------------------ #
    # 4. Shared-memory parallel HOOI (Algorithm 3): same numerics, threaded
    #    TTMc over the symbolic update lists.  (The low-level driver is used
    #    here for its roofline report; `decompose(..., execution="thread")`
    #    runs the same backend.)
    # ------------------------------------------------------------------ #
    options = HOOIOptions(max_iterations=10, init="hosvd", tolerance=1e-6, seed=0)
    report = shared_hooi(
        observed, (4, 3, 2), options, config=ParallelConfig(num_threads=4)
    )
    print(f"\nthreaded HOOI fit        : {report.result.fit:.4f} "
          f"({report.num_threads} threads, "
          f"{report.measured_seconds_per_iteration * 1e3:.1f} ms/iter measured)")

    # ------------------------------------------------------------------ #
    # 4b. True multicore: the same row-parallel decomposition on worker
    #     processes with zero-copy shared memory (GIL-free numerics).
    # ------------------------------------------------------------------ #
    process_result = decompose(observed, (4, 3, 2),
                               execution="process", num_workers=4,
                               max_iterations=10, init="hosvd",
                               tolerance=1e-6, seed=0)
    print(f"process HOOI fit         : {process_result.fit:.4f} "
          "(4 worker processes, results identical to sequential)")

    # ------------------------------------------------------------------ #
    # 5. Predict held-out entries with the fitted model.
    # ------------------------------------------------------------------ #
    rng = np.random.default_rng(7)
    held_out = np.column_stack([rng.integers(0, s, 1000) for s in observed.shape])
    predicted = model.reconstruct_entries(held_out)
    actual = truth.reconstruct_entries(held_out)
    rmse = float(np.sqrt(np.mean((predicted - actual) ** 2)))
    print(f"\nheld-out RMSE vs ground truth: {rmse:.4f} "
          f"(value scale ~{np.std(actual):.3f})")


if __name__ == "__main__":
    main()
