"""Setup shim.

The primary metadata lives in ``pyproject.toml``; this file exists so that the
package can be installed in environments without the ``wheel`` package (where
PEP 517 editable installs fail with ``invalid command 'bdist_wheel'``) via::

    python setup.py develop   # or: pip install -e . (when wheel is available)
"""

from setuptools import setup

setup()
