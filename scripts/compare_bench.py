#!/usr/bin/env python3
"""Normalize pytest-benchmark output and gate CI on perf regressions.

Two subcommands, both stdlib-only so the CI job needs nothing beyond the
test dependencies:

``normalize``
    Convert the raw ``--benchmark-json`` dump into the committed-artifact
    schema: a flat ``kernel name -> {mean_ms, stddev_ms, rounds}`` mapping
    (``repro-bench/1``).  The normalized file is what CI uploads as
    ``BENCH_<sha>.json`` and what ``BENCH_baseline.json`` stores.

``compare``
    Compare a normalized result against the checked-in baseline and exit
    nonzero when any kernel's mean regressed by more than ``--threshold``
    (default 1.5x).  Kernels faster than ``--min-ms`` in the baseline or
    measured with fewer than ``--min-rounds`` rounds are reported but never
    gate (sub-millisecond and single-shot timings are noise-dominated on
    shared CI runners); kernels present on only one side are reported as
    informational.

Refresh the baseline locally with::

    PYTHONPATH=src python -m pytest benchmarks -q --benchmark-json=bench-raw.json
    python scripts/compare_bench.py normalize bench-raw.json --out BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

SCHEMA = "repro-bench/1"


def load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def normalize(raw: dict, source: str) -> dict:
    """Flatten a pytest-benchmark JSON dump into the committed schema."""
    kernels = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        kernels[bench["fullname"]] = {
            "mean_ms": round(stats["mean"] * 1e3, 6),
            "stddev_ms": round(stats["stddev"] * 1e3, 6),
            "rounds": stats.get("rounds"),
        }
    return {
        "schema": SCHEMA,
        "source": source,
        "machine": raw.get("machine_info", {}).get("node"),
        "kernels": dict(sorted(kernels.items())),
    }


def check_schema(doc: dict, path: str) -> dict:
    if doc.get("schema") != SCHEMA or "kernels" not in doc:
        sys.exit(f"{path}: not a {SCHEMA} document (run the normalize step first)")
    return doc["kernels"]


def cmd_normalize(args: argparse.Namespace) -> int:
    doc = normalize(load_json(args.raw), source=args.raw)
    if not doc["kernels"]:
        sys.exit(f"{args.raw}: no benchmarks found in the raw dump")
    Path(args.out).write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out} ({len(doc['kernels'])} kernels)")
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    current = check_schema(load_json(args.current), args.current)
    baseline = check_schema(load_json(args.baseline), args.baseline)

    regressions = []
    width = max((len(k) for k in baseline), default=0)
    for name in sorted(set(baseline) | set(current)):
        if name not in current:
            print(f"MISSING  {name} (in baseline only — removed benchmark?)")
            continue
        if name not in baseline:
            print(
                f"NEW      {name} ({current[name]['mean_ms']:.3f} ms; "
                "not gated — refresh the baseline to track it)"
            )
            continue
        base_ms = baseline[name]["mean_ms"]
        cur_ms = current[name]["mean_ms"]
        ratio = cur_ms / base_ms if base_ms > 0 else float("inf")
        rounds = baseline[name].get("rounds") or 0
        gated = base_ms >= args.min_ms and rounds >= args.min_rounds
        verdict = "ok"
        if ratio > args.threshold:
            verdict = "REGRESSION" if gated else "slow (ungated)"
            if gated:
                regressions.append((name, base_ms, cur_ms, ratio))
        print(
            f"{verdict:14s} {name:<{width}s} "
            f"{base_ms:10.3f} -> {cur_ms:10.3f} ms  ({ratio:5.2f}x)"
        )

    if regressions:
        print(
            f"\n{len(regressions)} kernel(s) regressed beyond "
            f"{args.threshold:.2f}x:"
        )
        for name, base_ms, cur_ms, ratio in regressions:
            print(f"  {name}: {base_ms:.3f} -> {cur_ms:.3f} ms ({ratio:.2f}x)")
        return 1
    print("\nno gated regressions")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    norm = sub.add_parser("normalize", help="flatten a --benchmark-json dump")
    norm.add_argument("raw", help="pytest-benchmark JSON output")
    norm.add_argument("--out", required=True, help="normalized output path")
    norm.set_defaults(func=cmd_normalize)

    comp = sub.add_parser("compare", help="gate against a baseline")
    comp.add_argument("current", help="normalized result to check")
    comp.add_argument("--baseline", default="BENCH_baseline.json")
    comp.add_argument(
        "--threshold",
        type=float,
        default=1.5,
        help="fail when mean exceeds baseline by this factor",
    )
    comp.add_argument(
        "--min-ms",
        type=float,
        default=0.5,
        help="baseline means below this never gate (noise floor)",
    )
    comp.add_argument(
        "--min-rounds",
        type=int,
        default=2,
        help="baseline kernels with fewer rounds never gate "
        "(single-shot timings are too noisy to compare)",
    )
    comp.set_defaults(func=cmd_compare)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
