#!/usr/bin/env python3
"""Regenerate every table of the paper reproduction and write experiments_output.txt.

This is the script behind EXPERIMENTS.md: it runs Tables I-V and the MET
comparison at the configured scale and writes the rendered tables to stdout
(tee it into a file to refresh the numbers quoted in the documentation).

Usage:
    python scripts/generate_experiments.py [--scale 2e-4] [--max-nodes 64]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import (
    ExperimentContext,
    render_met_comparison,
    render_table1,
    render_table2,
    render_table3,
    render_table4,
    render_table5,
    run_met_comparison,
    run_table1,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=2e-4,
                        help="dataset scale factor (fraction of the paper's nnz)")
    parser.add_argument("--max-nodes", type=int, default=64,
                        help="largest simulated rank count for Table II")
    parser.add_argument("--table3-parts", type=int, default=16,
                        help="rank count for Table III")
    parser.add_argument("--table4-parts", type=int, default=8,
                        help="rank count for Table IV")
    args = parser.parse_args()

    context = ExperimentContext(scale=args.scale, seed=0)
    node_counts = [p for p in (1, 4, 16, 64, 256) if p <= args.max_nodes]

    def section(title: str) -> None:
        print()
        print("=" * 78)
        print(title)
        print("=" * 78)

    start = time.time()
    section(f"Configuration: dataset scale = {args.scale:g}, seed = 0")

    section("Table I")
    print(render_table1(run_table1(context)))

    section("Table II (strong scaling, scale-matched machine model)")
    print(render_table2(run_table2(context, node_counts=node_counts)))

    section(f"Table III (Flickr analog, {args.table3_parts} ranks)")
    print(render_table3(run_table3(context, num_parts=args.table3_parts),
                        num_parts=args.table3_parts))

    section(f"Table IV (fine-hp, {args.table4_parts} ranks, simulated run)")
    print(render_table4(run_table4(context, num_parts=args.table4_parts,
                                   iterations=2)))

    section("Table V (shared-memory thread scaling)")
    print(render_table5(run_table5(context, measure=True,
                                   measured_thread_counts=(1, 2, 4),
                                   iterations=1)))

    section("MET comparison (single core)")
    print(render_met_comparison(run_met_comparison(
        shape=(1000, 1000, 1000), nnz=100_000, ranks=10, iterations=5, seed=0)))

    print()
    print(f"Total generation time: {time.time() - start:.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
